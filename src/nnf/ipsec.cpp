#include "nnf/ipsec.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

namespace {

util::Status parse_key(const std::string& hex, std::span<std::uint8_t> out) {
  std::vector<std::uint8_t> bytes;
  if (!util::hex_decode(hex, bytes) || bytes.size() != out.size()) {
    return util::invalid_argument("ipsec: key must be " +
                                  std::to_string(out.size() * 2) +
                                  " hex chars");
  }
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return util::Status::ok();
}

util::Status parse_mac(const std::string& text, packet::MacAddress& out) {
  auto mac = packet::MacAddress::parse(text);
  if (!mac.has_value()) {
    return util::invalid_argument("ipsec: bad MAC '" + text + "'");
  }
  out = *mac;
  return util::Status::ok();
}

/// Deterministic unpredictable IV: AES-encrypt the (SPI, seq) block.
std::array<std::uint8_t, 16> derive_iv(const crypto::Aes& aes,
                                       std::uint32_t spi, std::uint64_t seq) {
  std::uint8_t block[16] = {};
  util::store_be32(block, spi);
  util::store_be64(block + 8, seq);
  std::array<std::uint8_t, 16> iv{};
  aes.encrypt_block(block, iv.data());
  return iv;
}

/// RFC 4304 Appendix A seq-hi recovery: given the 32-bit seq-lo off the
/// wire and the highest authenticated sequence (replay_top), infer the
/// high half that places the packet inside or above the replay window.
/// The result feeds the integrity check, so a wrong inference (a seq-lo
/// replayed from another 2^32 cycle) fails authentication rather than
/// advancing the window — recovery itself never trusts the wire.
std::uint64_t esn_recover_seq(const SecurityAssociation& sa,
                              std::uint32_t seql) {
  constexpr std::uint32_t kWindow = IpsecEndpoint::kReplayWindow;
  const auto tl = static_cast<std::uint32_t>(sa.replay_top);
  const auto th = static_cast<std::uint32_t>(sa.replay_top >> 32);
  std::uint32_t seqh;
  if (tl >= kWindow - 1) {
    // Window lies within one seq-lo cycle: a seq-lo below the window's
    // bottom can only be the *next* cycle.
    seqh = seql >= tl - (kWindow - 1) ? th : th + 1;
  } else {
    // Window straddles a seq-lo wrap: large seq-lo values belong to the
    // previous cycle (the subtraction wraps mod 2^32 on purpose).
    seqh = seql >= tl - (kWindow - 1) ? th - 1 : th;
  }
  return (static_cast<std::uint64_t>(seqh) << 32) | seql;
}

/// Integrity-check sequence material. Without ESN this reproduces the
/// 8-byte wire ESP header (SPI || seq-lo); with ESN it is
/// SPI || seq-hi || seq-lo (12 bytes, RFC 4106 §5) — seq-hi never
/// appears on the wire, which is exactly what binds the receiver's
/// recovered value into the tag. Returns the AAD length.
std::size_t esp_aad(const SecurityAssociation& sa, std::uint64_t seq,
                    std::uint8_t aad[12]) {
  util::store_be32(aad, sa.spi);
  if (sa.esn) {
    util::store_be64(aad + 4, seq);
    return 12;
  }
  util::store_be32(aad + 4, static_cast<std::uint32_t>(seq));
  return 8;
}

/// GCM nonce: (salt ^ SPI) || explicit IV. The two directions of a
/// tunnel share one enc_key + salt here (single `enc_key` config), so
/// the per-direction SPI MUST feed the nonce — otherwise the initiator's
/// packet N and the responder's packet N would encrypt under the same
/// (key, nonce) pair, which for GCM leaks plaintext XORs and the GHASH
/// subkey. This is the GCM analogue of derive_iv() mixing the SPI into
/// the CBC IV; configure() enforces spi_out != spi_in.
void gcm_nonce(const SecurityAssociation& sa, const std::uint8_t iv[8],
               std::uint8_t nonce[crypto::GcmContext::kIvSize]) {
  util::store_be32(nonce, util::load_be32(sa.salt.data()) ^ sa.spi);
  std::memcpy(nonce + 4, iv, 8);
}

}  // namespace

util::Status IpsecEndpoint::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  Tunnel& tunnel = tunnels_[ctx];
  for (const auto& [key, value] : config) {
    if (key == "local_ip" || key == "peer_ip") {
      auto addr = packet::Ipv4Address::parse(value);
      if (!addr.has_value()) {
        return util::invalid_argument("ipsec: bad " + key + " '" + value +
                                      "'");
      }
      (key == "local_ip" ? tunnel.local_ip : tunnel.peer_ip) = *addr;
    } else if (key == "spi_out" || key == "spi_in") {
      std::uint64_t spi = 0;
      if (!util::parse_u64(value, spi) || spi == 0 || spi > 0xFFFFFFFFULL) {
        return util::invalid_argument("ipsec: bad " + key + " '" + value +
                                      "'");
      }
      (key == "spi_out" ? tunnel.out_sa.spi : tunnel.in_sa.spi) =
          static_cast<std::uint32_t>(spi);
    } else if (key == "enc_key") {
      // 32 hex chars = AES-128 key; 40 = key + 4-byte GCM salt (the
      // RFC 4106 §8.1 keying-material order). cbc-hmac ignores the salt.
      std::vector<std::uint8_t> bytes;
      if (!util::hex_decode(value, bytes) ||
          (bytes.size() != 16 && bytes.size() != 20)) {
        return util::invalid_argument(
            "ipsec: enc_key must be 32 hex chars (AES-128) or 40 (AES-128 "
            "+ GCM salt)");
      }
      std::copy_n(bytes.begin(), 16, tunnel.out_sa.enc_key.begin());
      if (bytes.size() == 20) {
        std::copy_n(bytes.begin() + 16, 4, tunnel.out_sa.salt.begin());
      } else {
        tunnel.out_sa.salt.fill(0);
      }
      tunnel.in_sa.enc_key = tunnel.out_sa.enc_key;
      tunnel.in_sa.salt = tunnel.out_sa.salt;
      tunnel.have_enc_key = true;
    } else if (key == "esp_transform") {
      if (value == "gcm") {
        tunnel.transform = EspTransform::kGcm;
      } else if (value == "cbc-hmac") {
        tunnel.transform = EspTransform::kCbcHmac;
      } else {
        return util::invalid_argument(
            "ipsec: esp_transform must be 'gcm' or 'cbc-hmac', got '" +
            value + "'");
      }
    } else if (key == "esn") {
      if (value != "on" && value != "off") {
        return util::invalid_argument(
            "ipsec: esn must be 'on' or 'off', got '" + value + "'");
      }
      tunnel.out_sa.esn = value == "on";
      tunnel.in_sa.esn = tunnel.out_sa.esn;
    } else if (key == "auth_key") {
      NNFV_RETURN_IF_ERROR(parse_key(value, tunnel.out_sa.auth_key));
      tunnel.in_sa.auth_key = tunnel.out_sa.auth_key;
    } else if (key == "outer_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_src_mac));
    } else if (key == "outer_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_dst_mac));
    } else if (key == "inner_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_src_mac));
    } else if (key == "inner_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_dst_mac));
    } else {
      return util::invalid_argument("ipsec: unknown config key '" + key +
                                    "'");
    }
  }
  // Key-schedule work that must not happen per packet: the AES schedule
  // and GCM GHASH table are expanded here once, and the HMAC ipad is
  // absorbed once per direction; the per-packet paths only copy
  // midstates. Both transforms' state is kept ready so esp_transform can
  // be flipped by a later configure() without re-sending keys (config
  // keys arrive in map order, so esp_transform may follow enc_key).
  if (tunnel.have_enc_key) {
    auto aes = crypto::Aes::create(tunnel.out_sa.enc_key);
    if (!aes) return aes.status();
    tunnel.cipher = aes.value();
    auto gcm = crypto::GcmContext::create(tunnel.out_sa.enc_key);
    if (!gcm) return gcm.status();
    tunnel.gcm = gcm.value();
  }
  tunnel.out_hmac_tmpl.emplace(tunnel.out_sa.auth_key);
  tunnel.in_hmac_tmpl.emplace(tunnel.in_sa.auth_key);
  // Both directions share one enc_key/salt, so the SPI is the only
  // per-direction component of the GCM nonce (see gcm_nonce()): equal
  // SPIs would reuse (key, nonce) pairs across directions.
  if (tunnel.out_sa.spi != 0 && tunnel.out_sa.spi == tunnel.in_sa.spi) {
    return util::invalid_argument(
        "ipsec: spi_out and spi_in must differ (the SPI keys the "
        "per-direction IV/nonce derivation)");
  }
  tunnel.configured = tunnel.have_enc_key && tunnel.out_sa.spi != 0 &&
                      tunnel.in_sa.spi != 0;
  return util::Status::ok();
}

std::vector<NfOutput> IpsecEndpoint::process(ContextId ctx,
                                             NfPortIndex in_port,
                                             sim::SimTime /*now*/,
                                             packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  if (!has_context(ctx) || in_port >= 2) {
    ++stats_.malformed;
    return out;
  }
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    ++stats_.no_sa;
    return out;
  }
  if (in_port == 0) return encapsulate(it->second, std::move(frame));
  return decapsulate(it->second, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::encapsulate(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  return tunnel.transform == EspTransform::kGcm
             ? encapsulate_gcm(tunnel, std::move(frame))
             : encapsulate_cbc(tunnel, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::decapsulate(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  return tunnel.transform == EspTransform::kGcm
             ? decapsulate_gcm(tunnel, std::move(frame))
             : decapsulate_cbc(tunnel, std::move(frame));
}

std::optional<std::span<const std::uint8_t>> IpsecEndpoint::parse_inner_ipv4(
    const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_.malformed;
    return std::nullopt;
  }
  // Inner packet = everything after the Ethernet header, trimmed to the IP
  // total length (drops any Ethernet padding).
  auto l3 = frame.data().subspan(eth->wire_size());
  auto inner_ip = packet::parse_ipv4(l3);
  if (!inner_ip || inner_ip->total_length > l3.size()) {
    ++stats_.malformed;
    return std::nullopt;
  }
  return std::span<const std::uint8_t>{l3.data(), inner_ip->total_length};
}

packet::PacketBuffer IpsecEndpoint::build_esp_frame(
    const Tunnel& tunnel, const SecurityAssociation& sa,
    std::size_t esp_payload) {
  packet::PacketBuffer outp;
  outp.push_back(kEspOffset + esp_payload);
  auto buf = outp.data();

  packet::EthernetHeader outer_eth{.dst = tunnel.outer_dst_mac,
                                   .src = tunnel.outer_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(outer_eth,
                         buf.subspan(0, packet::kEthernetHeaderSize));

  packet::Ipv4Header outer_ip;
  outer_ip.protocol = packet::kIpProtoEsp;
  outer_ip.ttl = 64;
  outer_ip.src = tunnel.local_ip;
  outer_ip.dst = tunnel.peer_ip;
  outer_ip.total_length =
      static_cast<std::uint16_t>(packet::kIpv4MinHeaderSize + esp_payload);
  outer_ip.identification = static_cast<std::uint16_t>(sa.seq);
  packet::write_ipv4(outer_ip, buf.subspan(packet::kEthernetHeaderSize,
                                           packet::kIpv4MinHeaderSize));

  packet::EspHeader esp{sa.spi, static_cast<std::uint32_t>(sa.seq)};
  packet::write_esp(esp, buf.subspan(kEspOffset, packet::kEspHeaderSize));
  return outp;
}

std::optional<IpsecEndpoint::EspIngress> IpsecEndpoint::parse_esp_ingress(
    const Tunnel& tunnel, const SecurityAssociation& sa,
    const packet::PacketBuffer& frame, std::size_t min_esp_payload) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_.malformed;
    return std::nullopt;
  }
  auto l3 = frame.data().subspan(eth->wire_size());
  auto ip = packet::parse_ipv4(l3);
  if (!ip || ip->protocol != packet::kIpProtoEsp ||
      ip->total_length > l3.size()) {
    ++stats_.malformed;
    return std::nullopt;
  }
  if (!(ip->dst == tunnel.local_ip)) {
    ++stats_.no_sa;
    return std::nullopt;
  }
  auto esp_area = l3.subspan(ip->header_size(),
                             ip->total_length - ip->header_size());
  if (esp_area.size() < min_esp_payload) {
    ++stats_.malformed;
    return std::nullopt;
  }
  auto esp = packet::parse_esp(esp_area);
  if (!esp) {
    ++stats_.malformed;
    return std::nullopt;
  }
  if (esp->spi != sa.spi) {
    ++stats_.no_sa;
    return std::nullopt;
  }
  // One recovery per packet: the 64-bit sequence inferred here is reused
  // for the AAD/ICV input and the replay update by every caller (single
  // and burst paths alike).
  const std::uint64_t seq =
      sa.esn ? esn_recover_seq(sa, esp->sequence) : esp->sequence;
  return EspIngress{esp_area, seq};
}

std::vector<NfOutput> IpsecEndpoint::emit_inner(
    const Tunnel& tunnel, std::vector<std::uint8_t>&& plaintext) {
  std::vector<NfOutput> out;
  if (plaintext.size() < 2) {
    ++stats_.malformed;
    return out;
  }
  const std::uint8_t next_header = plaintext.back();
  const std::uint8_t pad_len = plaintext[plaintext.size() - 2];
  if (next_header != 4 || plaintext.size() < 2u + pad_len) {
    ++stats_.malformed;
    return out;
  }
  // Validate the monotonic pad bytes (cheap corruption check).
  for (std::size_t i = 0; i < pad_len; ++i) {
    const std::size_t idx = plaintext.size() - 2 - pad_len + i;
    if (plaintext[idx] != i + 1) {
      ++stats_.malformed;
      return out;
    }
  }
  plaintext.resize(plaintext.size() - 2 - pad_len);

  // Rebuild an Ethernet frame around the inner IP packet.
  packet::PacketBuffer inner(
      std::span<const std::uint8_t>(plaintext.data(), plaintext.size()));
  auto ethspan = inner.push_front(packet::kEthernetHeaderSize);
  packet::EthernetHeader inner_eth{.dst = tunnel.inner_dst_mac,
                                   .src = tunnel.inner_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(inner_eth, ethspan);

  ++stats_.decapsulated;
  out.push_back(NfOutput{0, std::move(inner)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::encapsulate_cbc(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  auto inner = parse_inner_ipv4(frame);
  if (!inner) return out;

  SecurityAssociation& sa = tunnel.out_sa;
  sa.seq += 1;

  // ESP trailer: pad so (inner + pad + 2) is a multiple of the block size;
  // pad bytes are 1,2,3,... (RFC 4303 \u00a72.4).
  const std::size_t block = crypto::Aes::kBlockSize;
  const std::size_t pad = (block - (inner->size() + 2) % block) % block;
  std::vector<std::uint8_t> plaintext(inner->begin(), inner->end());
  for (std::size_t i = 1; i <= pad; ++i) {
    plaintext.push_back(static_cast<std::uint8_t>(i));
  }
  plaintext.push_back(static_cast<std::uint8_t>(pad));
  plaintext.push_back(4);  // next header: IPv4 (tunnel mode)

  const auto iv = derive_iv(*tunnel.cipher, sa.spi, sa.seq);
  auto ciphertext = crypto::aes_cbc_encrypt_raw(*tunnel.cipher, iv, plaintext);
  if (!ciphertext) {
    ++stats_.malformed;
    return out;
  }

  // Assemble: Eth | outer IPv4 | ESP | IV | ciphertext | ICV.
  const std::size_t esp_payload =
      packet::kEspHeaderSize + kIvSize + ciphertext->size() + kIcvSize;
  packet::PacketBuffer outp = build_esp_frame(tunnel, sa, esp_payload);
  auto buf = outp.data();
  std::memcpy(buf.data() + kEspOffset + packet::kEspHeaderSize, iv.data(),
              kIvSize);
  std::memcpy(buf.data() + kEspOffset + packet::kEspHeaderSize + kIvSize,
              ciphertext->data(), ciphertext->size());

  // ICV over ESP header + IV + ciphertext (RFC 4303 \u00a72.8); with ESN the
  // 32-bit seq-hi is appended to the authenticated data but never
  // transmitted (RFC 4303 \u00a72.2.1).
  const std::size_t auth_len =
      packet::kEspHeaderSize + kIvSize + ciphertext->size();
  crypto::HmacSha256 hmac = *tunnel.out_hmac_tmpl;
  hmac.update(buf.subspan(kEspOffset, auth_len));
  if (sa.esn) {
    std::uint8_t hi[4];
    util::store_be32(hi, static_cast<std::uint32_t>(sa.seq >> 32));
    hmac.update(hi);
  }
  const auto icv = hmac.final();
  std::memcpy(buf.data() + kEspOffset + auth_len, icv.data(), kIcvSize);

  ++stats_.encapsulated;
  out.push_back(NfOutput{1, std::move(outp)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::decapsulate_cbc(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  SecurityAssociation& sa = tunnel.in_sa;
  auto ingress = parse_esp_ingress(
      tunnel, sa, frame,
      packet::kEspHeaderSize + kIvSize + crypto::Aes::kBlockSize + kIcvSize);
  if (!ingress) return out;
  auto esp_area = ingress->esp_area;

  // Verify ICV first (constant time), then replay, then decrypt. Under
  // ESN the recovered seq-hi joins the authenticated data (implicit
  // suffix, RFC 4303 §2.2.1) — a wrong recovery fails right here.
  const std::size_t auth_len = esp_area.size() - kIcvSize;
  crypto::HmacSha256 hmac = *tunnel.in_hmac_tmpl;
  hmac.update(esp_area.subspan(0, auth_len));
  if (sa.esn) {
    std::uint8_t hi[4];
    util::store_be32(hi, static_cast<std::uint32_t>(ingress->sequence >> 32));
    hmac.update(hi);
  }
  const auto expected = hmac.final();
  if (!crypto::constant_time_equal({expected.data(), kIcvSize},
                                   esp_area.subspan(auth_len, kIcvSize))) {
    ++stats_.auth_failures;
    return out;
  }
  if (!replay_check_and_update(sa, ingress->sequence)) {
    ++stats_.replay_drops;
    return out;
  }

  auto iv = esp_area.subspan(packet::kEspHeaderSize, kIvSize);
  auto ciphertext = esp_area.subspan(
      packet::kEspHeaderSize + kIvSize,
      auth_len - packet::kEspHeaderSize - kIvSize);
  auto plaintext =
      crypto::aes_cbc_decrypt_raw(*tunnel.cipher, iv, ciphertext);
  if (!plaintext) {
    ++stats_.malformed;
    return out;
  }
  return emit_inner(tunnel, std::move(*plaintext));
}

// RFC 4106-shaped AES-GCM ESP: Eth | outer IPv4 | ESP | IV(8) |
// ciphertext | ICV(16). The explicit IV is the 64-bit sequence counter;
// the GCM nonce is (salt ^ SPI)(4) || IV(8) — a deliberate deviation
// from RFC 4106's plain salt||IV, needed because both directions share
// one enc_key here (see gcm_nonce(); a conforming peer with per-SA
// keymat would not interoperate). The AAD is the 8-byte ESP header
// (SPI, seq).
// Encryption and authentication happen in one in-place seal() over the
// output buffer \u2014 no separate HMAC pass, no plaintext staging copy, and
// both CTR and GHASH pipeline across blocks on the hardware backend.
std::vector<NfOutput> IpsecEndpoint::encapsulate_gcm(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  auto inner = parse_inner_ipv4(frame);
  if (!inner) return out;

  SecurityAssociation& sa = tunnel.out_sa;
  sa.seq += 1;

  // ESP trailer: GCM is a stream mode, so padding only has to satisfy the
  // RFC 4303 4-byte alignment of (payload | pad_len | next_header).
  const std::size_t pad = (4 - (inner->size() + 2) % 4) % 4;
  const std::size_t pt_len = inner->size() + pad + 2;
  const std::size_t esp_payload =
      packet::kEspHeaderSize + kGcmIvSize + pt_len + kGcmIcvSize;
  packet::PacketBuffer outp = build_esp_frame(tunnel, sa, esp_payload);
  auto buf = outp.data();
  util::store_be64(buf.data() + kEspOffset + packet::kEspHeaderSize, sa.seq);

  // Assemble plaintext (inner packet + trailer) directly where the
  // ciphertext goes and seal in place.
  const std::size_t ct_off = kEspOffset + packet::kEspHeaderSize + kGcmIvSize;
  std::memcpy(buf.data() + ct_off, inner->data(), inner->size());
  std::uint8_t* trailer = buf.data() + ct_off + inner->size();
  for (std::size_t i = 1; i <= pad; ++i) {
    trailer[i - 1] = static_cast<std::uint8_t>(i);
  }
  trailer[pad] = static_cast<std::uint8_t>(pad);
  trailer[pad + 1] = 4;  // next header: IPv4 (tunnel mode)

  std::uint8_t nonce[crypto::GcmContext::kIvSize];
  gcm_nonce(sa, buf.data() + kEspOffset + packet::kEspHeaderSize, nonce);
  // AAD: the ESP header, widened to SPI || seq-hi || seq-lo under ESN
  // (without ESN the constructed bytes equal the wire header exactly).
  std::uint8_t aad[12];
  const std::size_t aad_len = esp_aad(sa, sa.seq, aad);

  if (!tunnel.gcm
           ->seal(nonce, {aad, aad_len}, buf.subspan(ct_off, pt_len),
                  buf.data() + ct_off, buf.data() + ct_off + pt_len)
           .is_ok()) {
    ++stats_.malformed;
    return out;
  }

  ++stats_.encapsulated;
  out.push_back(NfOutput{1, std::move(outp)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::decapsulate_gcm(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  SecurityAssociation& sa = tunnel.in_sa;
  // Minimum: ESP header + IV + 2-byte trailer (pad_len, next_header) + ICV.
  auto ingress = parse_esp_ingress(
      tunnel, sa, frame,
      packet::kEspHeaderSize + kGcmIvSize + 2 + kGcmIcvSize);
  if (!ingress) return out;
  auto esp_area = ingress->esp_area;

  std::uint8_t nonce[crypto::GcmContext::kIvSize];
  gcm_nonce(sa, esp_area.data() + packet::kEspHeaderSize, nonce);

  const std::size_t ct_len = esp_area.size() - packet::kEspHeaderSize -
                             kGcmIvSize - kGcmIcvSize;
  auto ciphertext =
      esp_area.subspan(packet::kEspHeaderSize + kGcmIvSize, ct_len);
  auto icv = esp_area.subspan(esp_area.size() - kGcmIcvSize, kGcmIcvSize);

  // Authenticate (tag over SPI || [recovered seq-hi ||] seq-lo +
  // ciphertext) and decrypt in one pass, then replay-check, then strip
  // the trailer. Under ESN the recovered high half is bound into the
  // AAD here — the wire never carries it.
  std::uint8_t aad[12];
  const std::size_t aad_len = esp_aad(sa, ingress->sequence, aad);
  std::vector<std::uint8_t> plaintext(ct_len);
  if (!tunnel.gcm->open({nonce, sizeof(nonce)}, {aad, aad_len}, ciphertext,
                        icv, plaintext.data())) {
    ++stats_.auth_failures;
    return out;
  }
  if (!replay_check_and_update(sa, ingress->sequence)) {
    ++stats_.replay_drops;
    return out;
  }
  return emit_inner(tunnel, std::move(plaintext));
}

std::vector<NfOutput> IpsecEndpoint::process_burst(
    ContextId ctx, NfPortIndex in_port, sim::SimTime /*now*/,
    packet::PacketBurst&& burst) {
  std::vector<NfOutput> out;
  if (burst.empty()) return out;
  if (!has_context(ctx) || in_port >= 2) {
    stats_.malformed += burst.size();
    return out;
  }
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    stats_.no_sa += burst.size();
    return out;
  }
  Tunnel& tunnel = it->second;
  out.reserve(burst.size());
  for (packet::PacketBuffer& frame : burst) {
    auto one = in_port == 0 ? encapsulate(tunnel, std::move(frame))
                            : decapsulate(tunnel, std::move(frame));
    for (NfOutput& output : one) out.push_back(std::move(output));
  }
  burst.clear();
  return out;
}

bool IpsecEndpoint::replay_check_and_update(SecurityAssociation& sa,
                                            std::uint64_t seq) {
  if (seq == 0) return false;  // seq 0 is never valid
  constexpr std::uint64_t kWindow = kReplayWindow;
  if (seq > sa.replay_top) {
    const std::uint64_t shift = seq - sa.replay_top;
    sa.replay_bitmap = shift >= kWindow ? 0 : sa.replay_bitmap << shift;
    sa.replay_bitmap |= 1;  // bit 0 = replay_top (the new seq)
    sa.replay_top = seq;
    return true;
  }
  const std::uint64_t offset = sa.replay_top - seq;
  if (offset >= kWindow) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if ((sa.replay_bitmap & bit) != 0) return false;  // duplicate
  sa.replay_bitmap |= bit;
  return true;
}

util::Status IpsecEndpoint::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  tunnels_.erase(ctx);
  return util::Status::ok();
}

SecurityAssociation* IpsecEndpoint::inbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() ? nullptr : &it->second.in_sa;
}

SecurityAssociation* IpsecEndpoint::outbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() ? nullptr : &it->second.out_sa;
}

}  // namespace nnfv::nnf
