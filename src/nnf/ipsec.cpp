#include "nnf/ipsec.hpp"

#include <cstring>

#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

namespace {

util::Status parse_key(const std::string& hex, std::span<std::uint8_t> out) {
  std::vector<std::uint8_t> bytes;
  if (!util::hex_decode(hex, bytes) || bytes.size() != out.size()) {
    return util::invalid_argument("ipsec: key must be " +
                                  std::to_string(out.size() * 2) +
                                  " hex chars");
  }
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return util::Status::ok();
}

util::Status parse_mac(const std::string& text, packet::MacAddress& out) {
  auto mac = packet::MacAddress::parse(text);
  if (!mac.has_value()) {
    return util::invalid_argument("ipsec: bad MAC '" + text + "'");
  }
  out = *mac;
  return util::Status::ok();
}

/// Deterministic unpredictable IV: AES-encrypt the (SPI, seq) block.
std::array<std::uint8_t, 16> derive_iv(const crypto::Aes& aes,
                                       std::uint32_t spi, std::uint64_t seq) {
  std::uint8_t block[16] = {};
  util::store_be32(block, spi);
  util::store_be64(block + 8, seq);
  std::array<std::uint8_t, 16> iv{};
  aes.encrypt_block(block, iv.data());
  return iv;
}

}  // namespace

util::Status IpsecEndpoint::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  Tunnel& tunnel = tunnels_[ctx];
  for (const auto& [key, value] : config) {
    if (key == "local_ip" || key == "peer_ip") {
      auto addr = packet::Ipv4Address::parse(value);
      if (!addr.has_value()) {
        return util::invalid_argument("ipsec: bad " + key + " '" + value +
                                      "'");
      }
      (key == "local_ip" ? tunnel.local_ip : tunnel.peer_ip) = *addr;
    } else if (key == "spi_out" || key == "spi_in") {
      std::uint64_t spi = 0;
      if (!util::parse_u64(value, spi) || spi == 0 || spi > 0xFFFFFFFFULL) {
        return util::invalid_argument("ipsec: bad " + key + " '" + value +
                                      "'");
      }
      (key == "spi_out" ? tunnel.out_sa.spi : tunnel.in_sa.spi) =
          static_cast<std::uint32_t>(spi);
    } else if (key == "enc_key") {
      NNFV_RETURN_IF_ERROR(parse_key(value, tunnel.out_sa.enc_key));
      tunnel.in_sa.enc_key = tunnel.out_sa.enc_key;
      auto aes = crypto::Aes::create(tunnel.out_sa.enc_key);
      if (!aes) return aes.status();
      tunnel.cipher = aes.value();
    } else if (key == "auth_key") {
      NNFV_RETURN_IF_ERROR(parse_key(value, tunnel.out_sa.auth_key));
      tunnel.in_sa.auth_key = tunnel.out_sa.auth_key;
    } else if (key == "outer_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_src_mac));
    } else if (key == "outer_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_dst_mac));
    } else if (key == "inner_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_src_mac));
    } else if (key == "inner_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_dst_mac));
    } else {
      return util::invalid_argument("ipsec: unknown config key '" + key +
                                    "'");
    }
  }
  // Key-schedule work that must not happen per packet: absorb the HMAC
  // ipad once per direction; encapsulate/decapsulate copy the midstate
  // per ICV.
  tunnel.out_hmac_tmpl.emplace(tunnel.out_sa.auth_key);
  tunnel.in_hmac_tmpl.emplace(tunnel.in_sa.auth_key);
  tunnel.configured = tunnel.cipher.has_value() && tunnel.out_sa.spi != 0 &&
                      tunnel.in_sa.spi != 0;
  return util::Status::ok();
}

std::vector<NfOutput> IpsecEndpoint::process(ContextId ctx,
                                             NfPortIndex in_port,
                                             sim::SimTime /*now*/,
                                             packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  if (!has_context(ctx) || in_port >= 2) {
    ++stats_.malformed;
    return out;
  }
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    ++stats_.no_sa;
    return out;
  }
  if (in_port == 0) return encapsulate(it->second, std::move(frame));
  return decapsulate(it->second, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::encapsulate(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_.malformed;
    return out;
  }
  // Inner packet = everything after the Ethernet header, trimmed to the IP
  // total length (drops any Ethernet padding).
  auto l3 = frame.data().subspan(eth->wire_size());
  auto inner_ip = packet::parse_ipv4(l3);
  if (!inner_ip || inner_ip->total_length > l3.size()) {
    ++stats_.malformed;
    return out;
  }
  std::span<const std::uint8_t> inner{l3.data(), inner_ip->total_length};

  SecurityAssociation& sa = tunnel.out_sa;
  sa.seq += 1;

  // ESP trailer: pad so (inner + pad + 2) is a multiple of the block size;
  // pad bytes are 1,2,3,... (RFC 4303 §2.4).
  const std::size_t block = crypto::Aes::kBlockSize;
  const std::size_t pad = (block - (inner.size() + 2) % block) % block;
  std::vector<std::uint8_t> plaintext(inner.begin(), inner.end());
  for (std::size_t i = 1; i <= pad; ++i) {
    plaintext.push_back(static_cast<std::uint8_t>(i));
  }
  plaintext.push_back(static_cast<std::uint8_t>(pad));
  plaintext.push_back(4);  // next header: IPv4 (tunnel mode)

  const auto iv = derive_iv(*tunnel.cipher, sa.spi, sa.seq);
  auto ciphertext = crypto::aes_cbc_encrypt_raw(*tunnel.cipher, iv, plaintext);
  if (!ciphertext) {
    ++stats_.malformed;
    return out;
  }

  // Assemble: Eth | outer IPv4 | ESP | IV | ciphertext | ICV.
  const std::size_t esp_payload =
      packet::kEspHeaderSize + kIvSize + ciphertext->size() + kIcvSize;
  const std::size_t total = packet::kEthernetHeaderSize +
                            packet::kIpv4MinHeaderSize + esp_payload;
  packet::PacketBuffer outp;
  outp.push_back(total);
  auto buf = outp.data();

  packet::EthernetHeader outer_eth{.dst = tunnel.outer_dst_mac,
                                   .src = tunnel.outer_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(outer_eth,
                         buf.subspan(0, packet::kEthernetHeaderSize));

  packet::Ipv4Header outer_ip;
  outer_ip.protocol = packet::kIpProtoEsp;
  outer_ip.ttl = 64;
  outer_ip.src = tunnel.local_ip;
  outer_ip.dst = tunnel.peer_ip;
  outer_ip.total_length =
      static_cast<std::uint16_t>(packet::kIpv4MinHeaderSize + esp_payload);
  outer_ip.identification = static_cast<std::uint16_t>(sa.seq);
  packet::write_ipv4(outer_ip, buf.subspan(packet::kEthernetHeaderSize,
                                           packet::kIpv4MinHeaderSize));

  const std::size_t esp_off =
      packet::kEthernetHeaderSize + packet::kIpv4MinHeaderSize;
  packet::EspHeader esp{sa.spi, static_cast<std::uint32_t>(sa.seq)};
  packet::write_esp(esp, buf.subspan(esp_off, packet::kEspHeaderSize));
  std::memcpy(buf.data() + esp_off + packet::kEspHeaderSize, iv.data(),
              kIvSize);
  std::memcpy(buf.data() + esp_off + packet::kEspHeaderSize + kIvSize,
              ciphertext->data(), ciphertext->size());

  // ICV over ESP header + IV + ciphertext (RFC 4303 §2.8).
  const std::size_t auth_len =
      packet::kEspHeaderSize + kIvSize + ciphertext->size();
  crypto::HmacSha256 hmac = *tunnel.out_hmac_tmpl;
  hmac.update(buf.subspan(esp_off, auth_len));
  const auto icv = hmac.final();
  std::memcpy(buf.data() + esp_off + auth_len, icv.data(), kIcvSize);

  ++stats_.encapsulated;
  out.push_back(NfOutput{1, std::move(outp)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::decapsulate(
    Tunnel& tunnel, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_.malformed;
    return out;
  }
  auto l3 = frame.data().subspan(eth->wire_size());
  auto ip = packet::parse_ipv4(l3);
  if (!ip || ip->protocol != packet::kIpProtoEsp ||
      ip->total_length > l3.size()) {
    ++stats_.malformed;
    return out;
  }
  if (!(ip->dst == tunnel.local_ip)) {
    ++stats_.no_sa;
    return out;
  }
  auto esp_area = l3.subspan(ip->header_size(),
                             ip->total_length - ip->header_size());
  if (esp_area.size() <
      packet::kEspHeaderSize + kIvSize + crypto::Aes::kBlockSize + kIcvSize) {
    ++stats_.malformed;
    return out;
  }
  auto esp = packet::parse_esp(esp_area);
  if (!esp) {
    ++stats_.malformed;
    return out;
  }
  SecurityAssociation& sa = tunnel.in_sa;
  if (esp->spi != sa.spi) {
    ++stats_.no_sa;
    return out;
  }

  // Verify ICV first (constant time), then replay, then decrypt.
  const std::size_t auth_len = esp_area.size() - kIcvSize;
  crypto::HmacSha256 hmac = *tunnel.in_hmac_tmpl;
  hmac.update(esp_area.subspan(0, auth_len));
  const auto expected = hmac.final();
  if (!crypto::constant_time_equal({expected.data(), kIcvSize},
                                   esp_area.subspan(auth_len, kIcvSize))) {
    ++stats_.auth_failures;
    return out;
  }
  if (!replay_check_and_update(sa, esp->sequence)) {
    ++stats_.replay_drops;
    return out;
  }

  auto iv = esp_area.subspan(packet::kEspHeaderSize, kIvSize);
  auto ciphertext = esp_area.subspan(
      packet::kEspHeaderSize + kIvSize,
      auth_len - packet::kEspHeaderSize - kIvSize);
  auto plaintext =
      crypto::aes_cbc_decrypt_raw(*tunnel.cipher, iv, ciphertext);
  if (!plaintext) {
    ++stats_.malformed;
    return out;
  }
  // Strip the ESP trailer.
  if (plaintext->size() < 2) {
    ++stats_.malformed;
    return out;
  }
  const std::uint8_t next_header = plaintext->back();
  const std::uint8_t pad_len = (*plaintext)[plaintext->size() - 2];
  if (next_header != 4 || plaintext->size() < 2u + pad_len) {
    ++stats_.malformed;
    return out;
  }
  // Validate the monotonic pad bytes (cheap corruption check).
  for (std::size_t i = 0; i < pad_len; ++i) {
    const std::size_t idx = plaintext->size() - 2 - pad_len + i;
    if ((*plaintext)[idx] != i + 1) {
      ++stats_.malformed;
      return out;
    }
  }
  plaintext->resize(plaintext->size() - 2 - pad_len);

  // Rebuild an Ethernet frame around the inner IP packet.
  packet::PacketBuffer inner(
      std::span<const std::uint8_t>(plaintext->data(), plaintext->size()));
  auto ethspan = inner.push_front(packet::kEthernetHeaderSize);
  packet::EthernetHeader inner_eth{.dst = tunnel.inner_dst_mac,
                                   .src = tunnel.inner_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(inner_eth, ethspan);

  ++stats_.decapsulated;
  out.push_back(NfOutput{0, std::move(inner)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::process_burst(
    ContextId ctx, NfPortIndex in_port, sim::SimTime /*now*/,
    packet::PacketBurst&& burst) {
  std::vector<NfOutput> out;
  if (burst.empty()) return out;
  if (!has_context(ctx) || in_port >= 2) {
    stats_.malformed += burst.size();
    return out;
  }
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    stats_.no_sa += burst.size();
    return out;
  }
  Tunnel& tunnel = it->second;
  out.reserve(burst.size());
  for (packet::PacketBuffer& frame : burst) {
    auto one = in_port == 0 ? encapsulate(tunnel, std::move(frame))
                            : decapsulate(tunnel, std::move(frame));
    for (NfOutput& output : one) out.push_back(std::move(output));
  }
  burst.clear();
  return out;
}

bool IpsecEndpoint::replay_check_and_update(SecurityAssociation& sa,
                                            std::uint32_t seq) {
  if (seq == 0) return false;  // seq 0 is never valid
  constexpr std::uint32_t kWindow = 64;
  if (seq > sa.replay_top) {
    const std::uint32_t shift = seq - sa.replay_top;
    sa.replay_bitmap = shift >= kWindow ? 0 : sa.replay_bitmap << shift;
    sa.replay_bitmap |= 1;  // bit 0 = replay_top (the new seq)
    sa.replay_top = seq;
    return true;
  }
  const std::uint32_t offset = sa.replay_top - seq;
  if (offset >= kWindow) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if ((sa.replay_bitmap & bit) != 0) return false;  // duplicate
  sa.replay_bitmap |= bit;
  return true;
}

util::Status IpsecEndpoint::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  tunnels_.erase(ctx);
  return util::Status::ok();
}

SecurityAssociation* IpsecEndpoint::inbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() ? nullptr : &it->second.in_sa;
}

}  // namespace nnfv::nnf
