#include "nnf/ipsec.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "exec/priority.hpp"
#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

namespace {

util::Status parse_key(const std::string& hex, std::span<std::uint8_t> out) {
  std::vector<std::uint8_t> bytes;
  if (!util::hex_decode(hex, bytes) || bytes.size() != out.size()) {
    return util::invalid_argument("ipsec: key must be " +
                                  std::to_string(out.size() * 2) +
                                  " hex chars");
  }
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return util::Status::ok();
}

/// 32 hex chars = AES-128 key; 40 = key + 4-byte GCM salt (the RFC 4106
/// §8.1 keying-material order). cbc-hmac ignores the salt.
util::Status parse_enc_key(const std::string& hex,
                           std::array<std::uint8_t, 16>& key,
                           std::array<std::uint8_t, 4>& salt) {
  std::vector<std::uint8_t> bytes;
  if (!util::hex_decode(hex, bytes) ||
      (bytes.size() != 16 && bytes.size() != 20)) {
    return util::invalid_argument(
        "ipsec: enc_key must be 32 hex chars (AES-128) or 40 (AES-128 "
        "+ GCM salt)");
  }
  std::copy_n(bytes.begin(), 16, key.begin());
  if (bytes.size() == 20) {
    std::copy_n(bytes.begin() + 16, 4, salt.begin());
  } else {
    salt.fill(0);
  }
  return util::Status::ok();
}

util::Status parse_spi(const std::string& key, const std::string& value,
                       std::uint32_t& out) {
  std::uint64_t spi = 0;
  if (!util::parse_u64(value, spi) || spi == 0 || spi > 0xFFFFFFFFULL) {
    return util::invalid_argument("ipsec: bad " + key + " '" + value + "'");
  }
  out = static_cast<std::uint32_t>(spi);
  return util::Status::ok();
}

util::Status parse_mac(const std::string& text, packet::MacAddress& out) {
  auto mac = packet::MacAddress::parse(text);
  if (!mac.has_value()) {
    return util::invalid_argument("ipsec: bad MAC '" + text + "'");
  }
  out = *mac;
  return util::Status::ok();
}

util::Status parse_count(const std::string& key, const std::string& value,
                         std::uint64_t& out) {
  if (!util::parse_u64(value, out)) {
    return util::invalid_argument("ipsec: bad " + key + " '" + value + "'");
  }
  return util::Status::ok();
}

/// Deterministic unpredictable IV: AES-encrypt the (SPI, seq) block.
std::array<std::uint8_t, 16> derive_iv(const crypto::Aes& aes,
                                       std::uint32_t spi, std::uint64_t seq) {
  std::uint8_t block[16] = {};
  util::store_be32(block, spi);
  util::store_be64(block + 8, seq);
  std::array<std::uint8_t, 16> iv{};
  aes.encrypt_block(block, iv.data());
  return iv;
}

/// RFC 4304 Appendix A seq-hi recovery: given the 32-bit seq-lo off the
/// wire and the highest authenticated sequence (replay_top), infer the
/// high half that places the packet inside or above the replay window.
/// The result feeds the integrity check, so a wrong inference (a seq-lo
/// replayed from another 2^32 cycle) fails authentication rather than
/// advancing the window — recovery itself never trusts the wire.
std::uint64_t esn_recover_seq(const SecurityAssociation& sa,
                              std::uint32_t seql) {
  constexpr std::uint32_t kWindow = IpsecEndpoint::kReplayWindow;
  const auto tl = static_cast<std::uint32_t>(sa.replay_top);
  const auto th = static_cast<std::uint32_t>(sa.replay_top >> 32);
  std::uint32_t seqh;
  if (tl >= kWindow - 1) {
    // Window lies within one seq-lo cycle: a seq-lo below the window's
    // bottom can only be the *next* cycle.
    seqh = seql >= tl - (kWindow - 1) ? th : th + 1;
  } else {
    // Window straddles a seq-lo wrap: large seq-lo values belong to the
    // previous cycle (the subtraction wraps mod 2^32 on purpose).
    seqh = seql >= tl - (kWindow - 1) ? th - 1 : th;
  }
  return (static_cast<std::uint64_t>(seqh) << 32) | seql;
}

/// Integrity-check sequence material. Without ESN this reproduces the
/// 8-byte wire ESP header (SPI || seq-lo); with ESN it is
/// SPI || seq-hi || seq-lo (12 bytes, RFC 4106 §5) — seq-hi never
/// appears on the wire, which is exactly what binds the receiver's
/// recovered value into the tag. Returns the AAD length.
std::size_t esp_aad(const SecurityAssociation& sa, std::uint64_t seq,
                    std::uint8_t aad[12]) {
  util::store_be32(aad, sa.spi);
  if (sa.esn) {
    util::store_be64(aad + 4, seq);
    return 12;
  }
  util::store_be32(aad + 4, static_cast<std::uint32_t>(seq));
  return 8;
}

/// GCM nonce: (salt ^ SPI) || explicit IV. The two directions of a
/// tunnel share one enc_key + salt here (single `enc_key` config), so
/// the per-direction SPI MUST feed the nonce — otherwise the initiator's
/// packet N and the responder's packet N would encrypt under the same
/// (key, nonce) pair, which for GCM leaks plaintext XORs and the GHASH
/// subkey. This is the GCM analogue of derive_iv() mixing the SPI into
/// the CBC IV; configure() enforces spi_out != spi_in.
void gcm_nonce(const SecurityAssociation& sa,
               const std::array<std::uint8_t, 4>& salt,
               const std::uint8_t iv[8],
               std::uint8_t nonce[crypto::GcmContext::kIvSize]) {
  util::store_be32(nonce, util::load_be32(salt.data()) ^ sa.spi);
  std::memcpy(nonce + 4, iv, 8);
}

bool soft_expired(const SaLifetime& lt, const SecurityAssociation& sa) {
  if (lt.soft_packets != 0 && sa.packets >= lt.soft_packets) return true;
  if (lt.soft_bytes != 0 && sa.bytes >= lt.soft_bytes) return true;
  // Sequence headroom: soft-trigger before the sequence space runs out.
  const std::uint64_t ceiling = sa.seq_ceiling();
  if (lt.seq_headroom != 0 && ceiling - sa.seq <= lt.seq_headroom) {
    return true;
  }
  return false;
}

bool hard_expired(const SaLifetime& lt, const SecurityAssociation& sa) {
  if (lt.hard_packets != 0 && sa.packets >= lt.hard_packets) return true;
  if (lt.hard_bytes != 0 && sa.bytes >= lt.hard_bytes) return true;
  return false;
}

json::Value sa_to_json(const SecurityAssociation& sa) {
  json::Object doc;
  doc["spi"] = static_cast<std::uint64_t>(sa.spi);
  doc["state"] = std::string(sa_state_name(sa.state));
  doc["esn"] = sa.esn;
  doc["seq"] = sa.seq.load();
  doc["replay_top"] = sa.replay_top.load();
  doc["packets"] = sa.packets.load();
  doc["bytes"] = sa.bytes.load();
  doc["auth_fail"] = sa.auth_fail.load();
  doc["replay_drops"] = sa.replay_drops.load();
  doc["lifetime_drops"] = sa.lifetime_drops.load();
  doc["malformed"] = sa.malformed.load();
  return doc;
}

}  // namespace

std::string_view sa_state_name(SaState state) {
  switch (state) {
    case SaState::kActive:
      return "active";
    case SaState::kRekeying:
      return "rekeying";
    case SaState::kDraining:
      return "draining";
    case SaState::kDead:
      return "dead";
  }
  return "?";
}

util::Status IpsecEndpoint::Keymat::prepare() {
  if (have_enc_key) {
    auto aes = crypto::Aes::create(enc_key);
    if (!aes) return aes.status();
    cipher = aes.value();
    auto g = crypto::GcmContext::create(enc_key);
    if (!g) return g.status();
    gcm = std::move(g).value();
  }
  hmac_tmpl.emplace(auth_key);
  return util::Status::ok();
}

void IpsecEndpoint::sad_insert(ContextId ctx, std::uint32_t spi,
                               SadSlot slot) {
  sad_[sad_key(ctx, spi)] = slot;
}

void IpsecEndpoint::sad_erase(ContextId ctx, std::uint32_t spi) {
  sad_.erase(sad_key(ctx, spi));
}

void IpsecEndpoint::register_control_spis(
    Tunnel& tunnel, std::initializer_list<std::uint32_t> spis) {
  unregister_control_spis(tunnel);
  for (std::uint32_t spi : spis) {
    exec::ControlSpiRegistry::instance().add(spi);
    tunnel.control_spis.push_back(spi);
  }
}

void IpsecEndpoint::unregister_control_spis(Tunnel& tunnel) {
  for (std::uint32_t spi : tunnel.control_spis) {
    exec::ControlSpiRegistry::instance().remove(spi);
  }
  tunnel.control_spis.clear();
}

util::Status IpsecEndpoint::configure(ContextId ctx, const NfConfig& config) {
  // Lifecycle mutation: exclusive vs. in-flight worker bursts.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  Tunnel& tunnel = tunnels_[ctx];
  if (!tunnel.keymat) tunnel.keymat = std::make_shared<Keymat>();
  const std::uint32_t prev_in_spi = tunnel.in_sa.spi;
  const bool was_configured = tunnel.configured;
  NfConfig rekey;
  for (const auto& [key, value] : config) {
    if (key == "local_ip" || key == "peer_ip") {
      auto addr = packet::Ipv4Address::parse(value);
      if (!addr.has_value()) {
        return util::invalid_argument("ipsec: bad " + key + " '" + value +
                                      "'");
      }
      (key == "local_ip" ? tunnel.local_ip : tunnel.peer_ip) = *addr;
    } else if (key == "spi_out") {
      NNFV_RETURN_IF_ERROR(parse_spi(key, value, tunnel.out_sa.spi));
    } else if (key == "spi_in") {
      NNFV_RETURN_IF_ERROR(parse_spi(key, value, tunnel.in_sa.spi));
    } else if (key == "enc_key") {
      NNFV_RETURN_IF_ERROR(parse_enc_key(value, tunnel.keymat->enc_key,
                                         tunnel.keymat->salt));
      tunnel.out_sa.enc_key = tunnel.keymat->enc_key;
      tunnel.out_sa.salt = tunnel.keymat->salt;
      tunnel.in_sa.enc_key = tunnel.keymat->enc_key;
      tunnel.in_sa.salt = tunnel.keymat->salt;
      tunnel.keymat->have_enc_key = true;
    } else if (key == "esp_transform") {
      if (value == "gcm") {
        tunnel.transform = EspTransform::kGcm;
      } else if (value == "cbc-hmac") {
        tunnel.transform = EspTransform::kCbcHmac;
      } else {
        return util::invalid_argument(
            "ipsec: esp_transform must be 'gcm' or 'cbc-hmac', got '" +
            value + "'");
      }
    } else if (key == "esn") {
      if (value != "on" && value != "off") {
        return util::invalid_argument(
            "ipsec: esn must be 'on' or 'off', got '" + value + "'");
      }
      tunnel.out_sa.esn = value == "on";
      tunnel.in_sa.esn = tunnel.out_sa.esn;
    } else if (key == "auth_key") {
      NNFV_RETURN_IF_ERROR(parse_key(value, tunnel.keymat->auth_key));
      tunnel.out_sa.auth_key = tunnel.keymat->auth_key;
      tunnel.in_sa.auth_key = tunnel.keymat->auth_key;
    } else if (key == "life_soft_packets") {
      NNFV_RETURN_IF_ERROR(
          parse_count(key, value, tunnel.lifetime.soft_packets));
    } else if (key == "life_hard_packets") {
      NNFV_RETURN_IF_ERROR(
          parse_count(key, value, tunnel.lifetime.hard_packets));
    } else if (key == "life_soft_bytes") {
      NNFV_RETURN_IF_ERROR(
          parse_count(key, value, tunnel.lifetime.soft_bytes));
    } else if (key == "life_hard_bytes") {
      NNFV_RETURN_IF_ERROR(
          parse_count(key, value, tunnel.lifetime.hard_bytes));
    } else if (key == "seq_headroom") {
      NNFV_RETURN_IF_ERROR(
          parse_count(key, value, tunnel.lifetime.seq_headroom));
    } else if (key == "drain_ns") {
      std::uint64_t ns = 0;
      NNFV_RETURN_IF_ERROR(parse_count(key, value, ns));
      tunnel.drain_ns = static_cast<sim::SimTime>(ns);
    } else if (key == "rekey_spi_out" || key == "rekey_spi_in" ||
               key == "rekey_enc_key" || key == "rekey_auth_key" ||
               key == "rekey_cutover") {
      rekey[key] = value;
    } else if (key == "outer_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_src_mac));
    } else if (key == "outer_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.outer_dst_mac));
    } else if (key == "inner_src_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_src_mac));
    } else if (key == "inner_dst_mac") {
      NNFV_RETURN_IF_ERROR(parse_mac(value, tunnel.inner_dst_mac));
    } else {
      return util::invalid_argument("ipsec: unknown config key '" + key +
                                    "'");
    }
  }
  // Key-schedule work that must not happen per packet: the AES schedule
  // and GCM GHASH table are expanded here once, and the HMAC ipad is
  // absorbed once; the per-packet paths only copy midstates. Both
  // transforms' state is kept ready so esp_transform can be flipped by a
  // later configure() without re-sending keys (config keys arrive in map
  // order, so esp_transform may follow enc_key).
  NNFV_RETURN_IF_ERROR(tunnel.keymat->prepare());
  // Both directions share one enc_key/salt, so the SPI is the only
  // per-direction component of the GCM nonce (see gcm_nonce()): equal
  // SPIs would reuse (key, nonce) pairs across directions.
  if (tunnel.out_sa.spi != 0 && tunnel.out_sa.spi == tunnel.in_sa.spi) {
    return util::invalid_argument(
        "ipsec: spi_out and spi_in must differ (the SPI keys the "
        "per-direction IV/nonce derivation)");
  }
  tunnel.configured = tunnel.keymat->have_enc_key &&
                      tunnel.out_sa.spi != 0 && tunnel.in_sa.spi != 0;
  // SAD sync for the current-generation inbound SA.
  if (was_configured && prev_in_spi != 0 &&
      prev_in_spi != tunnel.in_sa.spi) {
    sad_erase(ctx, prev_in_spi);
  }
  if (tunnel.configured) {
    sad_insert(ctx, tunnel.in_sa.spi, SadSlot::kCurrent);
  }
  if (!rekey.empty()) {
    NNFV_RETURN_IF_ERROR(stage_rekey(ctx, tunnel, rekey));
  }
  return util::Status::ok();
}

util::Status IpsecEndpoint::stage_rekey(ContextId ctx, Tunnel& tunnel,
                                        const NfConfig& rekey) {
  if (!tunnel.configured) {
    return util::failed_precondition(
        "ipsec: rekey_* keys require a configured tunnel");
  }
  auto get = [&rekey](const char* key) -> const std::string* {
    auto it = rekey.find(key);
    return it == rekey.end() ? nullptr : &it->second;
  };
  const std::string* spi_out = get("rekey_spi_out");
  const std::string* spi_in = get("rekey_spi_in");
  const std::string* enc_key = get("rekey_enc_key");
  if (spi_out == nullptr || spi_in == nullptr || enc_key == nullptr) {
    return util::invalid_argument(
        "ipsec: a rekey needs rekey_spi_out, rekey_spi_in and "
        "rekey_enc_key together (fresh SPIs + fresh keymat)");
  }
  StagedRekey staged;
  staged.keymat = std::make_shared<Keymat>();
  NNFV_RETURN_IF_ERROR(parse_spi("rekey_spi_out", *spi_out,
                                 staged.out_sa.spi));
  NNFV_RETURN_IF_ERROR(parse_spi("rekey_spi_in", *spi_in,
                                 staged.in_sa.spi));
  NNFV_RETURN_IF_ERROR(parse_enc_key(*enc_key, staged.keymat->enc_key,
                                     staged.keymat->salt));
  staged.keymat->have_enc_key = true;
  if (const std::string* auth_key = get("rekey_auth_key")) {
    NNFV_RETURN_IF_ERROR(parse_key(*auth_key, staged.keymat->auth_key));
  } else {
    staged.keymat->auth_key = tunnel.keymat->auth_key;
  }
  if (const std::string* cutover_mode = get("rekey_cutover")) {
    if (*cutover_mode == "now") {
      staged.immediate = true;
    } else if (*cutover_mode != "soft") {
      return util::invalid_argument(
          "ipsec: rekey_cutover must be 'soft' or 'now', got '" +
          *cutover_mode + "'");
    }
  }
  if (staged.out_sa.spi == staged.in_sa.spi) {
    return util::invalid_argument(
        "ipsec: rekey_spi_out and rekey_spi_in must differ");
  }
  // The staged inbound SPI joins the SAD immediately, so it must not
  // collide with an inbound SPI this context already answers to — except
  // the previously staged one, which a restage replaces.
  const bool replaces_staged =
      tunnel.staged && tunnel.staged->in_sa.spi == staged.in_sa.spi;
  if (!replaces_staged &&
      sad_.count(sad_key(ctx, staged.in_sa.spi)) != 0) {
    return util::invalid_argument(
        "ipsec: rekey_spi_in " + *spi_in +
        " collides with a live inbound SA of this tunnel");
  }
  NNFV_RETURN_IF_ERROR(staged.keymat->prepare());
  staged.out_sa.esn = tunnel.out_sa.esn;
  staged.in_sa.esn = tunnel.in_sa.esn;
  staged.out_sa.enc_key = staged.keymat->enc_key;
  staged.out_sa.salt = staged.keymat->salt;
  staged.out_sa.auth_key = staged.keymat->auth_key;
  staged.in_sa.enc_key = staged.keymat->enc_key;
  staged.in_sa.salt = staged.keymat->salt;
  staged.in_sa.auth_key = staged.keymat->auth_key;
  // Restaging replaces a pending (not yet cut over) rekey.
  if (tunnel.staged) sad_erase(ctx, tunnel.staged->in_sa.spi);
  sad_insert(ctx, staged.in_sa.spi, SadSlot::kStaged);
  // The new generation's ESP traffic is control priority until the
  // superseded SA retires: overload shedding must not starve a rekey
  // into a dead tunnel. (Replaces any previous registration — a restage
  // or back-to-back rekey moves the protection to the newest SPIs.)
  register_control_spis(tunnel, {staged.out_sa.spi, staged.in_sa.spi});
  tunnel.staged = std::move(staged);
  ++stats_shard().rekeys_started;
  return util::Status::ok();
}

void IpsecEndpoint::expire_draining(ContextId ctx, Tunnel& tunnel,
                                    sim::SimTime now) {
  if (tunnel.draining && now >= tunnel.draining->deadline) {
    tunnel.draining->sa.state = SaState::kDead;
    sad_erase(ctx, tunnel.draining->sa.spi);
    tunnel.draining.reset();
    // Rekey fully complete (old generation gone): the new SPIs carry
    // ordinary traffic now, so they lose control priority — unless a
    // newer rekey already re-registered its own SPIs.
    if (!tunnel.staged) unregister_control_spis(tunnel);
    ++stats_shard().sas_retired;
  }
}

void IpsecEndpoint::cutover(ContextId ctx, Tunnel& tunnel,
                            sim::SimTime now) {
  // A previous generation still draining is force-retired: at most two
  // inbound generations (current + one draining) are live per tunnel.
  if (tunnel.draining) {
    sad_erase(ctx, tunnel.draining->sa.spi);
    tunnel.draining.reset();
    ++stats_shard().sas_retired;
  }
  DrainingSa draining;
  draining.sa = tunnel.in_sa;
  draining.sa.state = SaState::kDraining;
  draining.keymat = tunnel.keymat;
  draining.deadline = now + tunnel.drain_ns;
  sad_insert(ctx, draining.sa.spi, SadSlot::kDraining);
  tunnel.draining = std::move(draining);

  tunnel.out_sa = tunnel.staged->out_sa;
  tunnel.in_sa = tunnel.staged->in_sa;
  tunnel.keymat = tunnel.staged->keymat;
  tunnel.staged.reset();
  sad_insert(ctx, tunnel.in_sa.spi, SadSlot::kCurrent);
  ++stats_shard().rekeys_completed;
}

SecurityAssociation* IpsecEndpoint::outbound_gate(ContextId ctx,
                                                  Tunnel& tunnel,
                                                  sim::SimTime now) {
  SecurityAssociation* sa = &tunnel.out_sa;
  const bool seq_exhausted = sa->seq >= sa->seq_ceiling();
  const bool hard = hard_expired(tunnel.lifetime, *sa) || seq_exhausted;
  const bool soft = soft_expired(tunnel.lifetime, *sa);
  if (tunnel.staged &&
      (tunnel.staged->immediate || soft || hard ||
       sa->state == SaState::kDead)) {
    // Make-before-break: with staged keymat present, every expiry
    // condition resolves into a cutover instead of a drop.
    cutover(ctx, tunnel, now);
    return &tunnel.out_sa;
  }
  if (sa->state == SaState::kDead || hard) {
    // RFC 4303 §3.3.3: the sequence counter must not cycle, and a hard
    // lifetime is a hard stop — drop with a counted reason rather than
    // emit a packet the SA is no longer allowed to send.
    sa->state = SaState::kDead;
    ++sa->lifetime_drops;
    ++stats_shard().lifetime_drops;
    return nullptr;
  }
  if (soft && sa->state == SaState::kActive) {
    // Soft expiry without staged keymat: keep sending, flag the SA so
    // the controller (REST stats) sees the rekey request.
    sa->state = SaState::kRekeying;
  }
  return sa;
}

bool IpsecEndpoint::fast_path_ok(const Tunnel& tunnel, NfPortIndex in_port,
                                 std::size_t frames) {
  if (tunnel.staged || tunnel.draining) return false;
  const SaLifetime& lt = tunnel.lifetime;
  if (lt.soft_packets != 0 || lt.hard_packets != 0 || lt.soft_bytes != 0 ||
      lt.hard_bytes != 0) {
    return false;
  }
  if (in_port == 0) {
    const SecurityAssociation& sa = tunnel.out_sa;
    if (sa.state != SaState::kActive) return false;
    // Neither sequence exhaustion nor the soft headroom trigger may
    // become reachable within this burst (conservative by one frame).
    const std::uint64_t remaining = sa.seq_ceiling() - sa.seq;
    if (remaining < frames) return false;
    if (lt.seq_headroom != 0 && remaining - frames <= lt.seq_headroom) {
      return false;
    }
  } else {
    if (tunnel.in_sa.state != SaState::kActive) return false;
  }
  return true;
}

std::vector<NfOutput> IpsecEndpoint::process(ContextId ctx,
                                             NfPortIndex in_port,
                                             sim::SimTime now,
                                             packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  {
    // Steady-state fast path under the shared lock: counters are
    // atomic, the replay window is single-writer (RSS pins a SPI's
    // ingress to one worker), and fast_path_ok guarantees no lifecycle
    // transition can trigger for this packet.
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (!has_context(ctx) || in_port >= 2) {
      ++stats_shard().malformed;
      return out;
    }
    auto it = tunnels_.find(ctx);
    if (it == tunnels_.end() || !it->second.configured) {
      ++stats_shard().no_sa;
      return out;
    }
    Tunnel& tunnel = it->second;
    if (fast_path_ok(tunnel, in_port, 1)) {
      if (in_port == 0) {
        return tunnel.transform == EspTransform::kGcm
                   ? encapsulate_gcm(tunnel, tunnel.out_sa, std::move(frame))
                   : encapsulate_cbc(tunnel, tunnel.out_sa, std::move(frame));
      }
      return decapsulate(ctx, tunnel, std::move(frame));
    }
  }
  // Lifecycle path (staged/draining generations, lifetimes, hard
  // stops): exclusive lock, exact single-threaded semantics.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    ++stats_shard().no_sa;
    return out;
  }
  expire_draining(ctx, it->second, now);
  if (in_port == 0) {
    return encapsulate(ctx, it->second, now, std::move(frame));
  }
  return decapsulate(ctx, it->second, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::encapsulate(
    ContextId ctx, Tunnel& tunnel, sim::SimTime now,
    packet::PacketBuffer&& frame) {
  SecurityAssociation* sa = outbound_gate(ctx, tunnel, now);
  if (sa == nullptr) return {};
  return tunnel.transform == EspTransform::kGcm
             ? encapsulate_gcm(tunnel, *sa, std::move(frame))
             : encapsulate_cbc(tunnel, *sa, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::decapsulate(
    ContextId ctx, Tunnel& tunnel, packet::PacketBuffer&& frame) {
  const std::size_t min_esp_payload =
      tunnel.transform == EspTransform::kGcm
          ? packet::kEspHeaderSize + kGcmIvSize + 2 + kGcmIcvSize
          : packet::kEspHeaderSize + kIvSize + crypto::Aes::kBlockSize +
                kIcvSize;
  // Decryption happens in place over the ciphertext region, so the
  // ingress spans must point into a privately owned segment.
  frame.unshare();
  auto ingress = parse_esp_ingress(ctx, tunnel, frame, min_esp_payload);
  if (!ingress) return {};
  return tunnel.transform == EspTransform::kGcm
             ? decapsulate_gcm(tunnel, *ingress, std::move(frame))
             : decapsulate_cbc(tunnel, *ingress, std::move(frame));
}

std::optional<std::span<const std::uint8_t>> IpsecEndpoint::parse_inner_ipv4(
    const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  // Inner packet = everything after the Ethernet header, trimmed to the IP
  // total length (drops any Ethernet padding).
  auto l3 = frame.data().subspan(eth->wire_size());
  auto inner_ip = packet::parse_ipv4(l3);
  if (!inner_ip || inner_ip->total_length > l3.size()) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  return std::span<const std::uint8_t>{l3.data(), inner_ip->total_length};
}

void IpsecEndpoint::write_outer_headers(const Tunnel& tunnel,
                                        const SecurityAssociation& sa,
                                        std::uint64_t seq,
                                        std::size_t esp_payload,
                                        std::span<std::uint8_t> buf) {
  packet::EthernetHeader outer_eth{.dst = tunnel.outer_dst_mac,
                                   .src = tunnel.outer_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(outer_eth,
                         buf.subspan(0, packet::kEthernetHeaderSize));

  packet::Ipv4Header outer_ip;
  outer_ip.protocol = packet::kIpProtoEsp;
  outer_ip.ttl = 64;
  outer_ip.src = tunnel.local_ip;
  outer_ip.dst = tunnel.peer_ip;
  outer_ip.total_length =
      static_cast<std::uint16_t>(packet::kIpv4MinHeaderSize + esp_payload);
  outer_ip.identification = static_cast<std::uint16_t>(seq);
  packet::write_ipv4(outer_ip, buf.subspan(packet::kEthernetHeaderSize,
                                           packet::kIpv4MinHeaderSize));

  packet::EspHeader esp{sa.spi, static_cast<std::uint32_t>(seq)};
  packet::write_esp(esp, buf.subspan(kEspOffset, packet::kEspHeaderSize));
}

std::optional<IpsecEndpoint::EspIngress> IpsecEndpoint::parse_esp_ingress(
    ContextId ctx, Tunnel& tunnel, const packet::PacketBuffer& frame,
    std::size_t min_esp_payload) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || eth->ether_type != packet::kEtherTypeIpv4) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  auto l3 = frame.data().subspan(eth->wire_size());
  auto ip = packet::parse_ipv4(l3);
  if (!ip || ip->protocol != packet::kIpProtoEsp ||
      ip->total_length > l3.size()) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  if (!(ip->dst == tunnel.local_ip)) {
    ++stats_shard().no_sa;
    return std::nullopt;
  }
  // parse_ipv4 guarantees total_length >= header_size, so this span is
  // in-bounds even for truncated garbage.
  auto esp_area = l3.subspan(ip->header_size(),
                             ip->total_length - ip->header_size());
  if (esp_area.size() < min_esp_payload) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  auto esp = packet::parse_esp(esp_area);
  if (!esp) {
    ++stats_shard().malformed;
    return std::nullopt;
  }
  // O(1) SAD resolution: (ctx, SPI) -> generation. Current, staged and
  // draining inbound SAs all answer here, which is what lets in-flight
  // packets of the superseded generation drain during a rekey.
  auto sad_it = sad_.find(sad_key(ctx, esp->spi));
  if (sad_it == sad_.end()) {
    ++stats_shard().no_sa;
    return std::nullopt;
  }
  SecurityAssociation* sa = nullptr;
  Keymat* keymat = nullptr;
  switch (sad_it->second) {
    case SadSlot::kCurrent:
      sa = &tunnel.in_sa;
      keymat = tunnel.keymat.get();
      break;
    case SadSlot::kStaged:
      sa = &tunnel.staged->in_sa;
      keymat = tunnel.staged->keymat.get();
      break;
    case SadSlot::kDraining:
      sa = &tunnel.draining->sa;
      keymat = tunnel.draining->keymat.get();
      break;
  }
  if (sa->state == SaState::kDead ||
      hard_expired(tunnel.lifetime, *sa)) {
    sa->state = SaState::kDead;
    ++sa->lifetime_drops;
    ++stats_shard().lifetime_drops;
    return std::nullopt;
  }
  // One recovery per packet: the 64-bit sequence inferred here is reused
  // for the AAD/ICV input and the replay update by every caller (single
  // and burst paths alike).
  const std::uint64_t seq =
      sa->esn ? esn_recover_seq(*sa, esp->sequence) : esp->sequence;
  const std::size_t esp_off =
      static_cast<std::size_t>(esp_area.data() - frame.data().data());
  return EspIngress{esp_area, esp_off, seq, sa, keymat};
}

std::vector<NfOutput> IpsecEndpoint::emit_inner(
    const Tunnel& tunnel, SecurityAssociation& sa,
    packet::PacketBuffer&& inner) {
  std::vector<NfOutput> out;
  const auto plaintext = inner.data();
  if (plaintext.size() < 2) {
    ++sa.malformed;
    ++stats_shard().malformed;
    return out;
  }
  const std::uint8_t next_header = plaintext.back();
  const std::uint8_t pad_len = plaintext[plaintext.size() - 2];
  // pad_len is bounded by what the payload can hold (RFC 4303 §2.4); a
  // larger value is forgery debris that must not underflow the trim.
  if (next_header != 4 || plaintext.size() < 2u + pad_len) {
    ++sa.malformed;
    ++stats_shard().malformed;
    return out;
  }
  // Validate the monotonic pad bytes (cheap corruption check).
  for (std::size_t i = 0; i < pad_len; ++i) {
    const std::size_t idx = plaintext.size() - 2 - pad_len + i;
    if (plaintext[idx] != i + 1) {
      ++sa.malformed;
      ++stats_shard().malformed;
      return out;
    }
  }
  // Strip the trailer and rebuild the Ethernet header in the headroom
  // the outer headers vacated — pure offset adjustments, no copy.
  inner.trim(plaintext.size() - 2 - pad_len);
  auto ethspan = inner.push_front(packet::kEthernetHeaderSize);
  packet::EthernetHeader inner_eth{.dst = tunnel.inner_dst_mac,
                                   .src = tunnel.inner_src_mac,
                                   .ether_type = packet::kEtherTypeIpv4,
                                   .vlan = std::nullopt};
  packet::write_ethernet(inner_eth, ethspan);

  ++sa.packets;
  sa.bytes += inner.size();
  ++stats_shard().decapsulated;
  out.push_back(NfOutput{0, std::move(inner)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::encapsulate_cbc(
    Tunnel& tunnel, SecurityAssociation& sa, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  // The frame is rebuilt in place; a flooded replica goes private first.
  frame.unshare();
  auto inner = parse_inner_ipv4(frame);
  if (!inner) return out;

  // Claim this packet's sequence number atomically: workers sharing the
  // SA each get a unique value.
  const std::uint64_t seq = ++sa.seq;
  const std::size_t inner_size = inner->size();

  // ESP trailer: pad so (inner + pad + 2) is a multiple of the block size;
  // pad bytes are 1,2,3,... (RFC 4303 §2.4).
  const std::size_t block = crypto::Aes::kBlockSize;
  const std::size_t pad = (block - (inner_size + 2) % block) % block;
  std::vector<std::uint8_t> plaintext(inner->begin(), inner->end());
  for (std::size_t i = 1; i <= pad; ++i) {
    plaintext.push_back(static_cast<std::uint8_t>(i));
  }
  plaintext.push_back(static_cast<std::uint8_t>(pad));
  plaintext.push_back(4);  // next header: IPv4 (tunnel mode)

  Keymat& keymat = *tunnel.keymat;
  const auto iv = derive_iv(*keymat.cipher, sa.spi, seq);
  auto ciphertext = crypto::aes_cbc_encrypt_raw(*keymat.cipher, iv, plaintext);
  if (!ciphertext) {
    ++stats_shard().malformed;
    return out;
  }

  // Reassemble Eth | outer IPv4 | ESP | IV | ciphertext | ICV into the
  // input frame's own segment (inner bytes were staged into `plaintext`
  // above — CBC is not length-preserving in place the way GCM is).
  const std::size_t esp_payload =
      packet::kEspHeaderSize + kIvSize + ciphertext->size() + kIcvSize;
  frame.reset();
  auto buf = frame.push_back(kEspOffset + esp_payload);
  write_outer_headers(tunnel, sa, seq, esp_payload, buf);
  std::memcpy(buf.data() + kEspOffset + packet::kEspHeaderSize, iv.data(),
              kIvSize);
  std::memcpy(buf.data() + kEspOffset + packet::kEspHeaderSize + kIvSize,
              ciphertext->data(), ciphertext->size());

  // ICV over ESP header + IV + ciphertext (RFC 4303 §2.8); with ESN the
  // 32-bit seq-hi is appended to the authenticated data but never
  // transmitted (RFC 4303 §2.2.1).
  const std::size_t auth_len =
      packet::kEspHeaderSize + kIvSize + ciphertext->size();
  crypto::HmacSha256 hmac = *keymat.hmac_tmpl;
  hmac.update(buf.subspan(kEspOffset, auth_len));
  if (sa.esn) {
    std::uint8_t hi[4];
    util::store_be32(hi, static_cast<std::uint32_t>(seq >> 32));
    hmac.update(hi);
  }
  const auto icv = hmac.final();
  std::memcpy(buf.data() + kEspOffset + auth_len, icv.data(), kIcvSize);

  ++sa.packets;
  sa.bytes += inner_size;
  ++stats_shard().encapsulated;
  out.push_back(NfOutput{1, std::move(frame)});
  return out;
}

std::vector<NfOutput> IpsecEndpoint::decapsulate_cbc(
    Tunnel& tunnel, EspIngress ingress, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  SecurityAssociation& sa = *ingress.sa;
  Keymat& keymat = *ingress.keymat;
  auto esp_area = ingress.esp_area;

  // Verify ICV first (constant time), then replay, then decrypt. Under
  // ESN the recovered seq-hi joins the authenticated data (implicit
  // suffix, RFC 4303 §2.2.1) — a wrong recovery fails right here.
  const std::size_t auth_len = esp_area.size() - kIcvSize;
  crypto::HmacSha256 hmac = *keymat.hmac_tmpl;
  hmac.update(esp_area.subspan(0, auth_len));
  if (sa.esn) {
    std::uint8_t hi[4];
    util::store_be32(hi, static_cast<std::uint32_t>(ingress.sequence >> 32));
    hmac.update(hi);
  }
  const auto expected = hmac.final();
  if (!crypto::constant_time_equal({expected.data(), kIcvSize},
                                   esp_area.subspan(auth_len, kIcvSize))) {
    ++sa.auth_fail;
    ++stats_shard().auth_failures;
    return out;
  }
  if (!replay_check_and_update(sa, ingress.sequence)) {
    ++sa.replay_drops;
    ++stats_shard().replay_drops;
    return out;
  }

  auto iv = esp_area.subspan(packet::kEspHeaderSize, kIvSize);
  auto ciphertext = esp_area.subspan(
      packet::kEspHeaderSize + kIvSize,
      auth_len - packet::kEspHeaderSize - kIvSize);
  auto plaintext =
      crypto::aes_cbc_decrypt_raw(*keymat.cipher, iv, ciphertext);
  if (!plaintext) {
    ++sa.malformed;
    ++stats_shard().malformed;
    return out;
  }
  // Rebuild the decrypted payload into the frame's own segment (the CBC
  // helper stages through a vector); the vacated outer-header space
  // becomes the headroom emit_inner prepends the Ethernet header into.
  frame.reset();
  auto dst = frame.push_back(plaintext->size());
  std::memcpy(dst.data(), plaintext->data(), plaintext->size());
  return emit_inner(tunnel, sa, std::move(frame));
}

// RFC 4106-shaped AES-GCM ESP: Eth | outer IPv4 | ESP | IV(8) |
// ciphertext | ICV(16). The explicit IV is the 64-bit sequence counter;
// the GCM nonce is (salt ^ SPI)(4) || IV(8) — a deliberate deviation
// from RFC 4106's plain salt||IV, needed because both directions share
// one enc_key here (see gcm_nonce(); a conforming peer with per-SA
// keymat would not interoperate). The AAD is the 8-byte ESP header
// (SPI, seq).
// Encryption and authentication happen in one in-place seal() over the
// output buffer — no separate HMAC pass, no plaintext staging copy, and
// both CTR and GHASH pipeline across blocks on the hardware backend.
bool IpsecEndpoint::encapsulate_gcm_prepare(Tunnel& tunnel,
                                            SecurityAssociation& sa,
                                            packet::PacketBuffer&& frame,
                                            GcmEncapPrep& prep) {
  // Headroom prepend + trailer append + in-place seal rebuild the frame
  // where it sits; a flooded replica must go private first.
  frame.unshare();
  auto inner = parse_inner_ipv4(frame);
  if (!inner) return false;

  // Claim this packet's sequence number atomically: workers sharing the
  // SA each get a unique value.
  const std::uint64_t seq = ++sa.seq;
  const std::size_t inner_size = inner->size();

  // Reduce the view to the inner IP packet: drop the red-side Ethernet
  // header and any Ethernet padding past total_length — pure offset
  // adjustments on the pooled segment, the payload never moves.
  const std::size_t eth_size =
      static_cast<std::size_t>(inner->data() - frame.data().data());
  frame.pull_front(eth_size);
  frame.trim(inner_size);

  // ESP trailer into the tailroom: GCM is a stream mode, so padding only
  // has to satisfy the RFC 4303 4-byte alignment of
  // (payload | pad_len | next_header).
  const std::size_t pad = (4 - (inner_size + 2) % 4) % 4;
  const std::size_t pt_len = inner_size + pad + 2;
  std::uint8_t* trailer = frame.push_back(pad + 2).data();
  for (std::size_t i = 1; i <= pad; ++i) {
    trailer[i - 1] = static_cast<std::uint8_t>(i);
  }
  trailer[pad] = static_cast<std::uint8_t>(pad);
  trailer[pad + 1] = 4;  // next header: IPv4 (tunnel mode)

  // Claim the headroom for Eth | outer IPv4 | ESP | IV (the red-side
  // Ethernet header plus default headroom always covers it) and the
  // tailroom for the ICV; the payload now sits where the seal reads and
  // writes it.
  const std::size_t esp_payload =
      packet::kEspHeaderSize + kGcmIvSize + pt_len + kGcmIcvSize;
  const std::size_t ct_off =
      kEspOffset + packet::kEspHeaderSize + kGcmIvSize;
  frame.push_front(ct_off);
  frame.push_back(kGcmIcvSize);
  auto buf = frame.data();
  write_outer_headers(tunnel, sa, seq, esp_payload, buf);
  util::store_be64(buf.data() + kEspOffset + packet::kEspHeaderSize, seq);

  Keymat& keymat = *tunnel.keymat;
  gcm_nonce(sa, keymat.salt, buf.data() + kEspOffset + packet::kEspHeaderSize,
            prep.nonce);
  // AAD: the ESP header, widened to SPI || seq-hi || seq-lo under ESN
  // (without ESN the constructed bytes equal the wire header exactly).
  prep.aad_len = esp_aad(sa, seq, prep.aad);
  prep.ct_off = ct_off;
  prep.pt_len = pt_len;
  prep.inner_size = inner_size;
  prep.frame = std::move(frame);
  return true;
}

NfOutput IpsecEndpoint::encapsulate_gcm_finish(SecurityAssociation& sa,
                                               GcmEncapPrep&& prep) {
  ++sa.packets;
  sa.bytes += prep.inner_size;
  ++stats_shard().encapsulated;
  return NfOutput{1, std::move(prep.frame)};
}

std::vector<NfOutput> IpsecEndpoint::encapsulate_gcm(
    Tunnel& tunnel, SecurityAssociation& sa, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  GcmEncapPrep prep;
  if (!encapsulate_gcm_prepare(tunnel, sa, std::move(frame), prep)) {
    return out;
  }
  auto buf = prep.frame.data();
  // Encryption and authentication in one in-place seal() over the
  // output buffer — no separate HMAC pass, no plaintext staging copy,
  // and both CTR and GHASH pipeline across blocks on the hardware
  // backend.
  if (!tunnel.keymat->gcm
           ->seal({prep.nonce, sizeof(prep.nonce)}, {prep.aad, prep.aad_len},
                  buf.subspan(prep.ct_off, prep.pt_len),
                  buf.data() + prep.ct_off,
                  buf.data() + prep.ct_off + prep.pt_len)
           .is_ok()) {
    ++stats_shard().malformed;
    return out;
  }
  out.push_back(encapsulate_gcm_finish(sa, std::move(prep)));
  return out;
}

void IpsecEndpoint::encapsulate_gcm_burst(Tunnel& tunnel,
                                          SecurityAssociation& sa,
                                          packet::PacketBurst& burst,
                                          std::vector<NfOutput>& out) {
  // Same-SA frames become independent seal_mb lanes: each packet keeps
  // its own nonce/AAD/sequence (claimed in frame order, so the wire is
  // bit-identical to the serial loop), while the batched kernel
  // interleaves their AES streams — short packets no longer serialise
  // on AESENC latency.
  constexpr std::size_t kLanes = crypto::CryptoBackend::kMaxMbLanes;
  Keymat& keymat = *tunnel.keymat;
  std::size_t idx = 0;
  while (idx < burst.size()) {
    GcmEncapPrep preps[kLanes];
    crypto::GcmMbOp ops[kLanes];
    std::size_t n = 0;
    while (idx < burst.size() && n < kLanes) {
      GcmEncapPrep& prep = preps[n];
      if (!encapsulate_gcm_prepare(tunnel, sa, std::move(burst[idx++]),
                                   prep)) {
        continue;  // dropped; parse failures leave no lane behind
      }
      auto buf = prep.frame.data();
      ops[n] = crypto::GcmMbOp{{prep.nonce, sizeof(prep.nonce)},
                               {prep.aad, prep.aad_len},
                               {buf.data() + prep.ct_off, prep.pt_len},
                               buf.data() + prep.ct_off,
                               buf.data() + prep.ct_off + prep.pt_len};
      ++n;
    }
    if (n == 0) continue;
    if (!keymat.gcm->seal_mb(ops, n).is_ok()) {
      stats_shard().malformed += n;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(encapsulate_gcm_finish(sa, std::move(preps[i])));
    }
  }
}

void IpsecEndpoint::decapsulate_gcm_burst(ContextId ctx, Tunnel& tunnel,
                                          packet::PacketBurst& burst,
                                          std::vector<NfOutput>& out) {
  constexpr std::size_t kLanes = crypto::CryptoBackend::kMaxMbLanes;
  const std::size_t min_esp_payload =
      packet::kEspHeaderSize + kGcmIvSize + 2 + kGcmIcvSize;

  struct DecapPrep {
    packet::PacketBuffer frame;
    SecurityAssociation* sa = nullptr;
    Keymat* keymat = nullptr;
    std::uint64_t sequence = 0;
    std::size_t pt_off = 0;
    std::size_t ct_len = 0;
    std::uint8_t nonce[crypto::GcmContext::kIvSize] = {};
    std::uint8_t aad[12] = {};
    std::size_t aad_len = 0;
  };

  std::size_t idx = 0;
  while (idx < burst.size()) {
    DecapPrep preps[kLanes];
    crypto::GcmMbOp ops[kLanes];
    std::size_t n = 0;
    while (idx < burst.size() && n < kLanes) {
      packet::PacketBuffer frame = std::move(burst[idx]);
      // Decryption happens in place over the ciphertext region, so the
      // ingress spans must point into a privately owned segment.
      frame.unshare();
      auto ingress = parse_esp_ingress(ctx, tunnel, frame, min_esp_payload);
      if (!ingress) {
        ++idx;
        continue;  // dropped and counted by the parser
      }
      // A batch shares one GcmContext: frames resolving to different
      // keymat (a control SPI mid-burst) close the current group and
      // start the next one.
      if (n > 0 && ingress->keymat != preps[0].keymat) {
        burst[idx] = std::move(frame);
        break;
      }
      ++idx;
      DecapPrep& prep = preps[n];
      prep.sa = ingress->sa;
      prep.keymat = ingress->keymat;
      prep.sequence = ingress->sequence;
      auto esp_area = ingress->esp_area;
      gcm_nonce(*prep.sa, prep.keymat->salt,
                esp_area.data() + packet::kEspHeaderSize, prep.nonce);
      prep.aad_len = esp_aad(*prep.sa, prep.sequence, prep.aad);
      prep.ct_len = esp_area.size() - packet::kEspHeaderSize - kGcmIvSize -
                    kGcmIcvSize;
      prep.pt_off = ingress->esp_off + packet::kEspHeaderSize + kGcmIvSize;
      auto ciphertext =
          esp_area.subspan(packet::kEspHeaderSize + kGcmIvSize, prep.ct_len);
      auto icv = esp_area.subspan(esp_area.size() - kGcmIcvSize, kGcmIcvSize);
      prep.frame = std::move(frame);
      ops[n] = crypto::GcmMbOp{
          {prep.nonce, sizeof(prep.nonce)},
          {prep.aad, prep.aad_len},
          ciphertext,
          prep.frame.data().data() + prep.pt_off,
          const_cast<std::uint8_t*>(icv.data())};
      ++n;
    }
    if (n == 0) continue;
    // Authenticate + decrypt every lane in one batched pass; forged
    // lanes come back wiped and flagged. The ordered epilogue below then
    // applies verdicts, replay checks and trailer stripping in frame
    // order — the only state mutations, so semantics match the serial
    // path packet for packet.
    bool ok[kLanes];
    (void)preps[0].keymat->gcm->open_mb(ops, n, ok);
    for (std::size_t i = 0; i < n; ++i) {
      DecapPrep& prep = preps[i];
      SecurityAssociation& sa = *prep.sa;
      if (!ok[i]) {
        ++sa.auth_fail;
        ++stats_shard().auth_failures;
        continue;
      }
      if (!replay_check_and_update(sa, prep.sequence)) {
        ++sa.replay_drops;
        ++stats_shard().replay_drops;
        continue;
      }
      prep.frame.pull_front(prep.pt_off);
      prep.frame.trim(prep.ct_len);
      auto one = emit_inner(tunnel, sa, std::move(prep.frame));
      for (NfOutput& output : one) out.push_back(std::move(output));
    }
  }
}

std::vector<NfOutput> IpsecEndpoint::decapsulate_gcm(
    Tunnel& tunnel, EspIngress ingress, packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  SecurityAssociation& sa = *ingress.sa;
  Keymat& keymat = *ingress.keymat;
  auto esp_area = ingress.esp_area;

  std::uint8_t nonce[crypto::GcmContext::kIvSize];
  gcm_nonce(sa, keymat.salt, esp_area.data() + packet::kEspHeaderSize, nonce);

  const std::size_t ct_len = esp_area.size() - packet::kEspHeaderSize -
                             kGcmIvSize - kGcmIcvSize;
  auto ciphertext =
      esp_area.subspan(packet::kEspHeaderSize + kGcmIvSize, ct_len);
  auto icv = esp_area.subspan(esp_area.size() - kGcmIcvSize, kGcmIcvSize);

  // Authenticate (tag over SPI || [recovered seq-hi ||] seq-lo +
  // ciphertext) and decrypt in one pass, then replay-check, then strip
  // the trailer. Under ESN the recovered high half is bound into the
  // AAD here — the wire never carries it.
  std::uint8_t aad[12];
  const std::size_t aad_len = esp_aad(sa, ingress.sequence, aad);
  // Decrypt in place: the plaintext overwrites the ciphertext region of
  // the frame's own segment (gcm_crypt allows in == out). On auth
  // failure open() wipes the half-written plaintext and the frame is
  // dropped, so nothing unauthenticated ever leaves this function.
  const std::size_t pt_off =
      ingress.esp_off + packet::kEspHeaderSize + kGcmIvSize;
  if (!keymat.gcm->open({nonce, sizeof(nonce)}, {aad, aad_len}, ciphertext,
                        icv, frame.data().data() + pt_off)) {
    ++sa.auth_fail;
    ++stats_shard().auth_failures;
    return out;
  }
  if (!replay_check_and_update(sa, ingress.sequence)) {
    ++sa.replay_drops;
    ++stats_shard().replay_drops;
    return out;
  }
  // Decap is a pure view adjustment: the outer headers + ESP + IV
  // become headroom, the ICV falls off the tail.
  frame.pull_front(pt_off);
  frame.trim(ct_len);
  return emit_inner(tunnel, sa, std::move(frame));
}

std::vector<NfOutput> IpsecEndpoint::process_burst(
    ContextId ctx, NfPortIndex in_port, sim::SimTime now,
    packet::PacketBurst&& burst) {
  std::vector<NfOutput> out;
  if (burst.empty()) return out;
  {
    // Steady-state fast path for the whole burst under the shared lock;
    // fast_path_ok is sized by the burst so no frame inside it can trip
    // a lifecycle transition.
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (!has_context(ctx) || in_port >= 2) {
      stats_shard().malformed += burst.size();
      return out;
    }
    auto it = tunnels_.find(ctx);
    if (it == tunnels_.end() || !it->second.configured) {
      stats_shard().no_sa += burst.size();
      return out;
    }
    Tunnel& tunnel = it->second;
    if (fast_path_ok(tunnel, in_port, burst.size())) {
      out.reserve(burst.size());
      // GCM bursts take the multi-buffer lanes: up to kMaxMbLanes
      // same-SA frames sealed/opened per batched backend call. Batched
      // ESN decap is skipped — seq-hi recovery reads the replay window,
      // and a burst crossing a 2^32 boundary must see each prior
      // packet's window update (the serial loop's semantics).
      if (tunnel.transform == EspTransform::kGcm && in_port == 0) {
        encapsulate_gcm_burst(tunnel, tunnel.out_sa, burst, out);
      } else if (tunnel.transform == EspTransform::kGcm &&
                 !tunnel.in_sa.esn) {
        decapsulate_gcm_burst(ctx, tunnel, burst, out);
      } else {
        for (packet::PacketBuffer& frame : burst) {
          auto one = in_port == 0
                         ? encapsulate_cbc(tunnel, tunnel.out_sa,
                                           std::move(frame))
                         : decapsulate(ctx, tunnel, std::move(frame));
          for (NfOutput& output : one) out.push_back(std::move(output));
        }
      }
      burst.clear();
      return out;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = tunnels_.find(ctx);
  if (it == tunnels_.end() || !it->second.configured) {
    stats_shard().no_sa += burst.size();
    return out;
  }
  Tunnel& tunnel = it->second;
  // Burst-amortised lifecycle sweep: the drain deadline cannot re-arm
  // mid-burst (cutover inside the burst sets a deadline >= now), so one
  // check up front covers every frame.
  expire_draining(ctx, tunnel, now);
  out.reserve(burst.size());
  for (packet::PacketBuffer& frame : burst) {
    auto one = in_port == 0
                   ? encapsulate(ctx, tunnel, now, std::move(frame))
                   : decapsulate(ctx, tunnel, std::move(frame));
    for (NfOutput& output : one) out.push_back(std::move(output));
  }
  burst.clear();
  return out;
}

bool IpsecEndpoint::replay_check_and_update(SecurityAssociation& sa,
                                            std::uint64_t seq) {
  if (seq == 0) return false;  // seq 0 is never valid
  constexpr std::uint64_t kWindow = kReplayWindow;
  if (seq > sa.replay_top) {
    const std::uint64_t shift = seq - sa.replay_top;
    sa.replay_bitmap = shift >= kWindow ? 0 : sa.replay_bitmap << shift;
    sa.replay_bitmap |= 1;  // bit 0 = replay_top (the new seq)
    sa.replay_top = seq;
    return true;
  }
  const std::uint64_t offset = sa.replay_top - seq;
  if (offset >= kWindow) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if ((sa.replay_bitmap & bit) != 0) return false;  // duplicate
  sa.replay_bitmap |= bit;
  return true;
}

util::Status IpsecEndpoint::remove_context(ContextId ctx) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  auto it = tunnels_.find(ctx);
  if (it != tunnels_.end()) {
    Tunnel& tunnel = it->second;
    if (tunnel.configured) sad_erase(ctx, tunnel.in_sa.spi);
    if (tunnel.staged) sad_erase(ctx, tunnel.staged->in_sa.spi);
    if (tunnel.draining) sad_erase(ctx, tunnel.draining->sa.spi);
    unregister_control_spis(tunnel);
    tunnels_.erase(it);
  }
  return util::Status::ok();
}

IpsecStats IpsecEndpoint::stats() const {
  // Aggregates the per-worker shards; counters are relaxed, so the sum
  // is a point-in-time snapshot, exact once the datapath is quiesced.
  IpsecStats totals;
  for (const StatsShard& shard : stats_shards_) {
    const IpsecStats& s = shard.stats;
    totals.encapsulated += s.encapsulated;
    totals.decapsulated += s.decapsulated;
    totals.auth_failures += s.auth_failures;
    totals.replay_drops += s.replay_drops;
    totals.malformed += s.malformed;
    totals.no_sa += s.no_sa;
    totals.lifetime_drops += s.lifetime_drops;
    totals.rekeys_started += s.rekeys_started;
    totals.rekeys_completed += s.rekeys_completed;
    totals.sas_retired += s.sas_retired;
  }
  return totals;
}

json::Value IpsecEndpoint::describe_stats(ContextId ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const IpsecStats totals = stats();
  json::Object doc;
  json::Object endpoint;
  endpoint["encapsulated"] = totals.encapsulated.load();
  endpoint["decapsulated"] = totals.decapsulated.load();
  endpoint["auth_failures"] = totals.auth_failures.load();
  endpoint["replay_drops"] = totals.replay_drops.load();
  endpoint["malformed"] = totals.malformed.load();
  endpoint["no_sa"] = totals.no_sa.load();
  endpoint["lifetime_drops"] = totals.lifetime_drops.load();
  endpoint["rekeys_started"] = totals.rekeys_started.load();
  endpoint["rekeys_completed"] = totals.rekeys_completed.load();
  endpoint["sas_retired"] = totals.sas_retired.load();
  doc["endpoint"] = std::move(endpoint);
  doc["sad_size"] = static_cast<std::uint64_t>(sad_.size());
  auto it = tunnels_.find(ctx);
  if (it != tunnels_.end() && it->second.configured) {
    const Tunnel& tunnel = it->second;
    json::Object t;
    t["transform"] =
        std::string(tunnel.transform == EspTransform::kGcm ? "gcm"
                                                           : "cbc-hmac");
    t["out_sa"] = sa_to_json(tunnel.out_sa);
    t["in_sa"] = sa_to_json(tunnel.in_sa);
    t["rekey_pending"] = tunnel.out_sa.state == SaState::kRekeying &&
                         !tunnel.staged.has_value();
    if (tunnel.staged) {
      json::Object staged;
      staged["out_sa"] = sa_to_json(tunnel.staged->out_sa);
      staged["in_sa"] = sa_to_json(tunnel.staged->in_sa);
      t["staged"] = std::move(staged);
    }
    if (tunnel.draining) {
      json::Object draining;
      draining["sa"] = sa_to_json(tunnel.draining->sa);
      draining["deadline_ns"] =
          static_cast<std::uint64_t>(tunnel.draining->deadline);
      t["draining"] = std::move(draining);
    }
    doc["tunnel"] = std::move(t);
  }
  return doc;
}

SecurityAssociation* IpsecEndpoint::inbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() ? nullptr : &it->second.in_sa;
}

SecurityAssociation* IpsecEndpoint::outbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() ? nullptr : &it->second.out_sa;
}

SecurityAssociation* IpsecEndpoint::staged_outbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() || !it->second.staged
             ? nullptr
             : &it->second.staged->out_sa;
}

SecurityAssociation* IpsecEndpoint::staged_inbound_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() || !it->second.staged
             ? nullptr
             : &it->second.staged->in_sa;
}

SecurityAssociation* IpsecEndpoint::draining_sa(ContextId ctx) {
  auto it = tunnels_.find(ctx);
  return it == tunnels_.end() || !it->second.draining
             ? nullptr
             : &it->second.draining->sa;
}

}  // namespace nnfv::nnf
