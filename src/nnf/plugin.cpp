#include "nnf/plugin.hpp"

#include "nnf/bridge.hpp"
#include "nnf/firewall.hpp"
#include "nnf/ipsec.hpp"
#include "nnf/nat.hpp"

namespace nnfv::nnf {

util::Status NnfPlugin::update(NetworkFunction& nf, ContextId ctx,
                               const NfConfig& config) {
  return nf.configure(ctx, config);
}

util::Status NnfPlugin::on_start(NetworkFunction& /*nf*/) {
  return util::Status::ok();
}

util::Status NnfPlugin::on_stop(NetworkFunction& /*nf*/) {
  return util::Status::ok();
}

std::shared_ptr<NnfPlugin> make_bridge_plugin() {
  NnfDescriptor d;
  d.functional_type = "bridge";
  // linuxbridge supports many independent bridge devices; no marking needed.
  d.max_instances = 8;
  d.sharable = false;
  d.single_interface = false;
  d.num_ports = 2;
  d.compute = virt::profile_forwarding();
  d.memory = {2 * virt::kMiB, 64};
  d.package_bytes = 300 * 1024;  // bridge-utils
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<Bridge>());
  });
}

std::shared_ptr<NnfPlugin> make_firewall_plugin() {
  NnfDescriptor d;
  d.functional_type = "firewall";
  // One iptables; per-graph chains give sharability, and the netfilter
  // hooks act as a single attachment point -> adaptation layer required.
  d.max_instances = 1;
  d.sharable = true;
  d.single_interface = true;
  d.num_ports = 2;
  d.compute = virt::profile_forwarding();
  d.memory = {4 * virt::kMiB, 128};
  d.package_bytes = 1200 * 1024;  // iptables + modules
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<Firewall>());
  });
}

std::shared_ptr<NnfPlugin> make_nat_plugin() {
  NnfDescriptor d;
  d.functional_type = "nat";
  d.max_instances = 1;
  d.sharable = true;
  d.single_interface = true;
  d.num_ports = 2;
  d.compute = virt::profile_nat();
  d.memory = {6 * virt::kMiB, 256};
  d.package_bytes = 1200 * 1024;
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<Nat>());
  });
}

std::shared_ptr<NnfPlugin> make_ipsec_plugin() {
  NnfDescriptor d;
  d.functional_type = "ipsec";
  // One Strongswan daemon; multiple tunnels (= contexts) make it sharable.
  // It exposes distinct red/black attachments, so no adaptation layer.
  d.max_instances = 1;
  d.sharable = true;
  d.single_interface = false;
  d.num_ports = 2;
  d.compute = virt::profile_ipsec_esp();
  d.memory = {19 * virt::kMiB + 400 * virt::kKiB, 512};  // Table 1: 19.4 MB
  d.package_bytes = 5 * virt::kMiB;                      // Table 1: 5 MB
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<IpsecEndpoint>());
  });
}

}  // namespace nnfv::nnf
