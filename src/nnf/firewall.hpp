// Stateless packet filter — the "iptables" firewall role of the paper.
//
// A FORWARD-chain model: rules are evaluated in order, first match wins,
// otherwise the default policy applies. Two logical ports (0 = LAN,
// 1 = WAN); accepted traffic crosses to the other port. Per-context rule
// sets give the sharable behaviour (one iptables, per-graph chains).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "nnf/network_function.hpp"
#include "packet/flow_key.hpp"

namespace nnfv::nnf {

enum class FilterVerdict { kAccept, kDrop };

struct FilterRule {
  std::optional<packet::Ipv4Address> src;
  std::uint8_t src_prefix = 32;
  std::optional<packet::Ipv4Address> dst;
  std::uint8_t dst_prefix = 32;
  std::optional<std::uint8_t> protocol;
  /// Inclusive destination port range; {0,65535} = any.
  std::uint16_t dport_lo = 0;
  std::uint16_t dport_hi = 65535;
  /// Restrict to one direction: 0 = LAN->WAN, 1 = WAN->LAN, nullopt = both.
  std::optional<NfPortIndex> in_port;
  FilterVerdict verdict = FilterVerdict::kDrop;

  [[nodiscard]] bool matches(NfPortIndex in_port_idx,
                             const packet::FiveTuple& tuple) const;
};

class Firewall : public NetworkFunction {
 public:
  Firewall() = default;

  [[nodiscard]] std::string_view type() const override { return "firewall"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys:
  ///   "policy"  = "accept" | "drop"
  ///   "rule.N"  = "<verdict>,<src|any>,<dst|any>,<proto|any>,<dports|any>[,in=<0|1>]"
  /// e.g. "drop,10.0.0.0/8,any,tcp,22" or "accept,any,192.168.1.7,udp,5000-5010".
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  /// Programmatic rule management (tests, examples).
  util::Status append_rule(ContextId ctx, FilterRule rule);
  void set_policy(ContextId ctx, FilterVerdict verdict);
  [[nodiscard]] std::size_t rule_count(ContextId ctx) const;

  [[nodiscard]] const NfCounters& counters() const { return counters_; }

 private:
  struct ContextState {
    std::vector<FilterRule> rules;
    FilterVerdict policy = FilterVerdict::kAccept;
  };

  std::map<ContextId, ContextState> state_;
  NfCounters counters_;
};

/// Parses the textual rule syntax documented at Firewall::configure.
util::Result<FilterRule> parse_filter_rule(const std::string& text);

}  // namespace nnfv::nnf
