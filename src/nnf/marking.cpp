#include "nnf/marking.hpp"

#include "util/strings.hpp"

namespace nnfv::nnf {

MarkAllocator::MarkAllocator(Mark lo, Mark hi) : lo_(lo), hi_(hi) {
  if (hi_ < lo_) hi_ = lo_;
}

util::Result<Mark> MarkAllocator::allocate(const std::string& owner) {
  if (owner.empty()) return util::invalid_argument("mark owner empty");
  auto it = by_owner_.find(owner);
  if (it != by_owner_.end()) return it->second;
  for (Mark m = lo_; m <= hi_; ++m) {
    if (!used_.contains(m)) {
      used_.insert(m);
      by_owner_[owner] = m;
      return m;
    }
    if (m == hi_) break;  // Mark is uint16_t: avoid wrap at 65535
  }
  return util::resource_exhausted("mark pool exhausted (" +
                                  std::to_string(capacity()) + " marks)");
}

util::Status MarkAllocator::release(const std::string& owner) {
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) {
    return util::not_found("mark owner '" + owner + "'");
  }
  used_.erase(it->second);
  by_owner_.erase(it);
  return util::Status::ok();
}

std::size_t MarkAllocator::release_prefix(const std::string& prefix) {
  std::size_t released = 0;
  for (auto it = by_owner_.begin(); it != by_owner_.end();) {
    if (util::starts_with(it->first, prefix)) {
      used_.erase(it->second);
      it = by_owner_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

util::Result<Mark> MarkAllocator::mark_of(const std::string& owner) const {
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) {
    return util::not_found("mark owner '" + owner + "'");
  }
  return it->second;
}

}  // namespace nnfv::nnf
