#include "nnf/policer.hpp"

#include "nnf/plugin.hpp"
#include "util/strings.hpp"
#include "virt/cost_model.hpp"

namespace nnfv::nnf {

util::Status TokenBucketPolicer::configure(ContextId ctx,
                                           const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  Bucket& bucket = buckets_[ctx];
  for (const auto& [key, value] : config) {
    if (key == "rate_mbps") {
      std::uint64_t mbps = 0;
      if (!util::parse_u64(value, mbps) || mbps == 0) {
        return util::invalid_argument("policer: bad rate_mbps '" + value +
                                      "'");
      }
      // Mbit/s -> bytes/ns: mbps * 1e6 / 8 bytes per second / 1e9.
      bucket.rate_bytes_per_ns = static_cast<double>(mbps) / 8000.0;
    } else if (key == "burst_kb") {
      std::uint64_t kb = 0;
      if (!util::parse_u64(value, kb) || kb == 0) {
        return util::invalid_argument("policer: bad burst_kb '" + value +
                                      "'");
      }
      bucket.burst_bytes = static_cast<double>(kb) * 1024.0;
      bucket.tokens = bucket.burst_bytes;
    } else if (key == "direction") {
      if (value == "both") {
        bucket.police_up_only = false;
      } else if (value == "up") {
        bucket.police_up_only = true;
      } else {
        return util::invalid_argument("policer: bad direction '" + value +
                                      "'");
      }
    } else {
      return util::invalid_argument("policer: unknown config key '" + key +
                                    "'");
    }
  }
  return util::Status::ok();
}

std::vector<NfOutput> TokenBucketPolicer::process(
    ContextId ctx, NfPortIndex in_port, sim::SimTime now,
    packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  if (!has_context(ctx) || in_port >= 2) return out;
  Bucket& bucket = buckets_[ctx];
  const NfPortIndex out_port = in_port == 0 ? 1u : 0u;

  // Unpoliced direction or unconfigured bucket: pass through.
  const bool policed = bucket.rate_bytes_per_ns > 0.0 &&
                       (!bucket.police_up_only || in_port == 0);
  if (!policed) {
    ++stats_.conformed;
    out.push_back(NfOutput{out_port, std::move(frame)});
    return out;
  }

  // Refill.
  if (now > bucket.last_refill) {
    bucket.tokens = std::min(
        bucket.burst_bytes,
        bucket.tokens + static_cast<double>(now - bucket.last_refill) *
                            bucket.rate_bytes_per_ns);
    bucket.last_refill = now;
  }
  const double cost = static_cast<double>(frame.size());
  if (bucket.tokens >= cost) {
    bucket.tokens -= cost;
    ++stats_.conformed;
    out.push_back(NfOutput{out_port, std::move(frame)});
  } else {
    ++stats_.exceeded;
  }
  return out;
}

util::Status TokenBucketPolicer::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  buckets_.erase(ctx);
  return util::Status::ok();
}

double TokenBucketPolicer::tokens(ContextId ctx) const {
  auto it = buckets_.find(ctx);
  return it == buckets_.end() ? 0.0 : it->second.tokens;
}

std::shared_ptr<NnfPlugin> make_policer_plugin() {
  NnfDescriptor d;
  d.functional_type = "policer";
  d.max_instances = 1;  // one tc qdisc tree
  d.sharable = true;
  d.single_interface = true;
  d.num_ports = 2;
  d.compute = virt::profile_forwarding();
  d.memory = {512 * 1024, 0, 64 * 1024};
  d.package_bytes = 200 * 1024;  // iproute2 slice
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<TokenBucketPolicer>());
  });
}

}  // namespace nnfv::nnf
