// NNF plugins: the per-function lifecycle glue the paper implements as "a
// collection of bash scripts that control the basic lifecycle (create,
// update, etc.) of the NF", plus the declarative capability record the
// orchestrator consults (sharable? single-interface? how many instances?).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "nnf/network_function.hpp"
#include "util/status.hpp"
#include "virt/cost_model.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::nnf {

/// Static description of one native network function available on a node.
struct NnfDescriptor {
  std::string functional_type;  ///< "ipsec", "nat", "firewall", "bridge"
  std::string version = "1.0";

  /// Maximum concurrently running instances (1 for most kernel-integrated
  /// functions: there is only one iptables).
  std::size_t max_instances = 1;

  /// Sharable per the paper's definition: the NNF can (i) distinguish
  /// traffic of different service graphs via a marking mechanism and
  /// (ii) keep multiple isolated internal paths.
  bool sharable = false;

  /// Designed to receive traffic from a single network interface; requires
  /// the adaptation layer (paper §2).
  bool single_interface = false;

  std::size_t num_ports = 2;  ///< logical ports of the function

  virt::NfComputeProfile compute;
  virt::NfMemoryProfile memory;
  std::uint64_t package_bytes = 0;  ///< installed size (image column, native)
};

/// Lifecycle controller for one NNF type. The default hooks are no-ops so a
/// plugin author only overrides what the underlying function needs — the
/// same economy the bash scripts had.
class NnfPlugin {
 public:
  virtual ~NnfPlugin() = default;

  [[nodiscard]] virtual const NnfDescriptor& descriptor() const = 0;

  /// "create" script: builds the function object.
  virtual util::Result<std::unique_ptr<NetworkFunction>> create_function() = 0;

  /// "update" script: translates a generic orchestrator configuration into
  /// function-specific commands. Default: pass the config through to
  /// NetworkFunction::configure (the paper's "predefined configuration
  /// script"; a richer translation is its stated future work).
  virtual util::Status update(NetworkFunction& nf, ContextId ctx,
                              const NfConfig& config);

  /// "start"/"stop" scripts.
  virtual util::Status on_start(NetworkFunction& nf);
  virtual util::Status on_stop(NetworkFunction& nf);
};

/// Plugin built from a descriptor and a factory lambda — enough for every
/// built-in NNF.
class SimpleNnfPlugin final : public NnfPlugin {
 public:
  using Factory =
      std::function<util::Result<std::unique_ptr<NetworkFunction>>()>;

  SimpleNnfPlugin(NnfDescriptor descriptor, Factory factory)
      : descriptor_(std::move(descriptor)), factory_(std::move(factory)) {}

  [[nodiscard]] const NnfDescriptor& descriptor() const override {
    return descriptor_;
  }

  util::Result<std::unique_ptr<NetworkFunction>> create_function() override {
    return factory_();
  }

 private:
  NnfDescriptor descriptor_;
  Factory factory_;
};

/// Built-in plugins mirroring the CPE-native functions the paper names.
std::shared_ptr<NnfPlugin> make_bridge_plugin();
std::shared_ptr<NnfPlugin> make_firewall_plugin();
std::shared_ptr<NnfPlugin> make_nat_plugin();
std::shared_ptr<NnfPlugin> make_ipsec_plugin();

}  // namespace nnfv::nnf
