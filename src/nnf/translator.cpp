#include "nnf/translator.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "nnf/dhcp.hpp"
#include "nnf/policer.hpp"
#include "util/strings.hpp"
#include "virt/cost_model.hpp"

namespace nnfv::nnf {

namespace {

using util::invalid_argument;
using util::Result;
using util::Status;

/// "<tcp|udp|icmp|any>[:port[-port]]" -> firewall rule body.
Result<std::string> lower_filter_spec(const std::string& spec,
                                      const std::string& verdict) {
  const auto colon = spec.find(':');
  const std::string proto =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  if (proto != "tcp" && proto != "udp" && proto != "icmp" && proto != "any") {
    return invalid_argument("generic: bad protocol in '" + spec + "'");
  }
  std::string ports = "any";
  if (colon != std::string::npos) {
    ports = spec.substr(colon + 1);
    if (ports.empty()) {
      return invalid_argument("generic: empty port in '" + spec + "'");
    }
  }
  return verdict + ",any,any," + proto + "," + ports;
}

Result<NfConfig> lower_firewall(const NfConfig& generic) {
  NfConfig out;
  int rule_index = 1;
  for (const auto& [key, value] : generic) {
    if (key == "default") {
      if (value == "allow") {
        out["policy"] = "accept";
      } else if (value == "deny") {
        out["policy"] = "drop";
      } else {
        return invalid_argument("generic: bad default '" + value + "'");
      }
    } else if (util::starts_with(key, "block.") ||
               util::starts_with(key, "allow.")) {
      auto rule = lower_filter_spec(
          value, util::starts_with(key, "block.") ? "drop" : "accept");
      if (!rule) return rule.status();
      out["rule." + std::to_string(rule_index++)] = rule.value();
    } else if (key != "description") {
      return invalid_argument("generic: unknown firewall key '" + key + "'");
    }
  }
  return out;
}

Result<NfConfig> lower_nat(const NfConfig& generic) {
  NfConfig out;
  for (const auto& [key, value] : generic) {
    if (key == "wan_address") {
      out["external_ip"] = value;
    } else if (key != "description") {
      return invalid_argument("generic: unknown nat key '" + key + "'");
    }
  }
  return out;
}

Result<NfConfig> lower_ipsec(const NfConfig& generic) {
  NfConfig out;
  std::string psk;
  std::string tunnel_id;
  for (const auto& [key, value] : generic) {
    if (key == "tunnel_local") {
      out["local_ip"] = value;
    } else if (key == "tunnel_remote") {
      out["peer_ip"] = value;
    } else if (key == "tunnel_id") {
      tunnel_id = value;
    } else if (key == "psk") {
      psk = value;
    } else if (key != "description") {
      return invalid_argument("generic: unknown ipsec key '" + key + "'");
    }
  }
  if (!tunnel_id.empty()) {
    std::uint64_t id = 0;
    if (!util::parse_u64(tunnel_id, id) || id == 0 || id > 0x7FFFFFFF) {
      return invalid_argument("generic: bad tunnel_id '" + tunnel_id + "'");
    }
    // Deterministic SPI pair: initiator side uses (2id, 2id+1); the far
    // end of the same tunnel_id mirrors them.
    out["spi_out"] = std::to_string(2 * id);
    out["spi_in"] = std::to_string(2 * id + 1);
  }
  if (!psk.empty()) {
    // Demo-grade KDF: enc = SHA256("enc"|psk)[:16], auth = SHA256("auth"|psk).
    auto derive = [&psk](const char* label) {
      std::vector<std::uint8_t> input(label, label + std::strlen(label));
      input.insert(input.end(), psk.begin(), psk.end());
      return crypto::Sha256::digest(input);
    };
    const auto enc = derive("enc");
    const auto auth = derive("auth");
    out["enc_key"] = util::hex_encode({enc.data(), 16});
    out["auth_key"] = util::hex_encode({auth.data(), auth.size()});
  }
  return out;
}

Result<NfConfig> lower_dhcp(const NfConfig& generic) {
  NfConfig out;
  for (const auto& [key, value] : generic) {
    if (key == "lan_address") {
      out["server_ip"] = value;
    } else if (key == "lan_pool") {
      const auto dash = value.find('-');
      if (dash == std::string::npos) {
        return invalid_argument("generic: lan_pool must be '<first>-<last>'");
      }
      out["pool_start"] = value.substr(0, dash);
      out["pool_end"] = value.substr(dash + 1);
    } else if (key != "description") {
      return invalid_argument("generic: unknown dhcp key '" + key + "'");
    }
  }
  return out;
}

Result<NfConfig> lower_policer(const NfConfig& generic) {
  NfConfig out;
  for (const auto& [key, value] : generic) {
    if (key == "rate_limit_mbps") {
      out["rate_mbps"] = value;
    } else if (key == "rate_burst_kb") {
      out["burst_kb"] = value;
    } else if (key == "upstream_only") {
      if (value != "0" && value != "1") {
        return invalid_argument("generic: bad upstream_only '" + value + "'");
      }
      out["direction"] = value == "1" ? "up" : "both";
    } else if (key != "description") {
      return invalid_argument("generic: unknown policer key '" + key + "'");
    }
  }
  return out;
}

Result<NfConfig> lower_bridge(const NfConfig& generic) {
  NfConfig out;
  for (const auto& [key, value] : generic) {
    if (key == "mac_aging_s") {
      std::uint64_t seconds = 0;
      if (!util::parse_u64(value, seconds)) {
        return invalid_argument("generic: bad mac_aging_s '" + value + "'");
      }
      out["aging_time_ms"] = std::to_string(seconds * 1000);
    } else if (key != "description") {
      return invalid_argument("generic: unknown bridge key '" + key + "'");
    }
  }
  return out;
}

}  // namespace

bool is_generic_config(const NfConfig& config) {
  auto it = config.find("generic");
  return it != config.end() && it->second == "1";
}

Result<NfConfig> translate_generic_config(const std::string& functional_type,
                                          const NfConfig& generic) {
  NfConfig stripped = generic;
  stripped.erase("generic");
  if (functional_type == "firewall") return lower_firewall(stripped);
  if (functional_type == "nat") return lower_nat(stripped);
  if (functional_type == "ipsec") return lower_ipsec(stripped);
  if (functional_type == "dhcp") return lower_dhcp(stripped);
  if (functional_type == "policer") return lower_policer(stripped);
  if (functional_type == "bridge") return lower_bridge(stripped);
  return invalid_argument("no generic-config translator for '" +
                          functional_type + "'");
}

Status TranslatingNnfPlugin::update(NetworkFunction& nf, ContextId ctx,
                                    const NfConfig& config) {
  if (!is_generic_config(config)) {
    return inner_->update(nf, ctx, config);
  }
  auto lowered = translate_generic_config(
      inner_->descriptor().functional_type, config);
  if (!lowered) return lowered.status();
  return inner_->update(nf, ctx, lowered.value());
}

std::shared_ptr<NnfPlugin> make_dhcp_plugin() {
  NnfDescriptor d;
  d.functional_type = "dhcp";
  d.max_instances = 1;  // one dnsmasq
  d.sharable = true;
  d.single_interface = true;  // answers on the LAN attachment only
  d.num_ports = 1;
  d.compute = virt::profile_forwarding();
  d.memory = {1 * virt::kMiB + 200 * 1024, 96, 128 * 1024};
  d.package_bytes = 400 * 1024;  // dnsmasq-sized
  return std::make_shared<SimpleNnfPlugin>(d, []() {
    return util::Result<std::unique_ptr<NetworkFunction>>(
        std::make_unique<DhcpServer>());
  });
}

NnfCatalog translating_builtin_catalog() {
  NnfCatalog catalog;
  for (auto plugin : {make_bridge_plugin(), make_firewall_plugin(),
                      make_nat_plugin(), make_ipsec_plugin(),
                      make_dhcp_plugin(), make_policer_plugin()}) {
    (void)catalog.register_plugin(
        std::make_shared<TranslatingNnfPlugin>(std::move(plugin)));
  }
  return catalog;
}

}  // namespace nnfv::nnf
