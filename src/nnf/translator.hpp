// Generic-configuration translation — the paper's stated FUTURE WORK:
//
//   "Support for a dynamic configuration mechanism able to translate a
//    generic NF configuration, provided by the orchestrator, in commands
//    appropriate to the specific NNF is not in the scope of this initial
//    implementation and will be targeted by future work."
//
// Implemented here: a small vendor-neutral configuration vocabulary a
// service designer can use without knowing which implementation will be
// picked, and per-functional-type translators that lower it into the
// concrete NfConfig each NNF understands. TranslatingNnfPlugin decorates
// any plugin so the lowering happens inside the driver's "update"
// lifecycle step, exactly where the bash scripts would have done it.
//
// Generic vocabulary (all values strings):
//   common:    "description" (ignored, for humans)
//   firewall:  "default"        = "allow" | "deny"
//              "block.N"        = "<tcp|udp|icmp|any>[:port[-port]]"
//              "allow.N"        = same syntax
//   nat:       "wan_address"    = dotted quad
//   ipsec:     "tunnel_local" / "tunnel_remote" = dotted quads
//              "tunnel_id"      = decimal (derives both SPIs)
//              "psk"            = any string; enc/auth keys are derived
//                                 via SHA-256 (demo-grade KDF)
//   dhcp:      "lan_address"    = server/router address
//              "lan_pool"       = "<first>-<last>"
//   bridge:    "mac_aging_s"    = decimal seconds
#pragma once

#include <memory>
#include <string>

#include "nnf/catalog.hpp"
#include "nnf/plugin.hpp"
#include "util/status.hpp"

namespace nnfv::nnf {

/// Lowers the generic vocabulary into `functional_type`'s native config.
/// Unknown generic keys are an error (catch typos loudly); an empty input
/// translates to an empty output.
util::Result<NfConfig> translate_generic_config(
    const std::string& functional_type, const NfConfig& generic);

/// True when the config uses the generic vocabulary (marker key
/// "generic" = "1"; the marker is stripped before translation).
bool is_generic_config(const NfConfig& config);

/// Decorator: translates generic configurations in update(), passes
/// native ones through untouched. create/start/stop delegate.
class TranslatingNnfPlugin final : public NnfPlugin {
 public:
  explicit TranslatingNnfPlugin(std::shared_ptr<NnfPlugin> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] const NnfDescriptor& descriptor() const override {
    return inner_->descriptor();
  }

  util::Result<std::unique_ptr<NetworkFunction>> create_function() override {
    return inner_->create_function();
  }

  util::Status update(NetworkFunction& nf, ContextId ctx,
                      const NfConfig& config) override;

  util::Status on_start(NetworkFunction& nf) override {
    return inner_->on_start(nf);
  }
  util::Status on_stop(NetworkFunction& nf) override {
    return inner_->on_stop(nf);
  }

 private:
  std::shared_ptr<NnfPlugin> inner_;
};

/// Builtin catalog with every plugin wrapped in the translator (and the
/// DHCP server registered as a fifth native function).
NnfCatalog translating_builtin_catalog();

/// DHCP plugin (single-interface, sharable), registered by the call above
/// and available standalone.
std::shared_ptr<NnfPlugin> make_dhcp_plugin();

}  // namespace nnfv::nnf
