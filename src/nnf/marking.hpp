// MarkAllocator: the "ad-hoc marking mechanism to distinguish between
// traffic belonging to different service graphs" (paper §2).
//
// Marks are 802.1Q VIDs from a reserved pool: the steering rules push the
// mark before handing a frame to a shared NNF's adaptation layer, and the
// adaptation layer demultiplexes on it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "util/status.hpp"

namespace nnfv::nnf {

using Mark = std::uint16_t;

class MarkAllocator {
 public:
  /// Pool of VIDs [lo, hi]; defaults avoid common user VLAN ranges.
  explicit MarkAllocator(Mark lo = 3000, Mark hi = 3999);

  /// Allocates the lowest free mark for an owner key (e.g. "graph7:nat:0").
  /// Re-requesting the same key returns the existing mark (idempotent).
  util::Result<Mark> allocate(const std::string& owner);

  util::Status release(const std::string& owner);

  /// Releases every mark whose owner starts with `prefix` (graph teardown).
  std::size_t release_prefix(const std::string& prefix);

  [[nodiscard]] std::size_t in_use() const { return by_owner_.size(); }
  [[nodiscard]] std::size_t capacity() const { return hi_ - lo_ + 1u; }
  [[nodiscard]] util::Result<Mark> mark_of(const std::string& owner) const;

 private:
  Mark lo_;
  Mark hi_;
  std::map<std::string, Mark> by_owner_;
  std::set<Mark> used_;
};

}  // namespace nnfv::nnf
