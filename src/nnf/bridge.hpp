// Learning bridge — the "linuxbridge" native function the paper lists.
//
// Classic 802.1D behaviour per context: learn source MAC -> port, forward
// to the learned port, flood unknown/broadcast to every other port. Entries
// age out after `aging_time`.
#pragma once

#include <map>

#include "nnf/network_function.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

class Bridge : public NetworkFunction {
 public:
  /// A bridge with `ports` ports (>= 2).
  explicit Bridge(std::size_t ports = 2);

  [[nodiscard]] std::string_view type() const override { return "bridge"; }
  [[nodiscard]] std::size_t num_ports() const override { return ports_; }

  /// Config keys: "aging_time_ms".
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  /// Size of the forwarding table of one context (tests).
  [[nodiscard]] std::size_t table_size(ContextId ctx) const;

  [[nodiscard]] const NfCounters& counters() const { return counters_; }

 private:
  struct FdbEntry {
    NfPortIndex port;
    sim::SimTime learned_at;
  };

  std::size_t ports_;
  sim::SimTime aging_time_ = 300 * sim::kSecond;
  std::map<ContextId, std::map<packet::MacAddress, FdbEntry>> fdb_;
  NfCounters counters_;
};

}  // namespace nnfv::nnf
