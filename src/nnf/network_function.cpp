#include "nnf/network_function.hpp"

#include <algorithm>

namespace nnfv::nnf {

// contexts_ is a sorted vector: membership is a binary search instead of
// the linear std::find scans this file used to do on every packet path.

util::Status NetworkFunction::add_context(ContextId ctx) {
  auto pos = std::lower_bound(contexts_.begin(), contexts_.end(), ctx);
  if (pos != contexts_.end() && *pos == ctx) {
    return util::already_exists("context " + std::to_string(ctx));
  }
  contexts_.insert(pos, ctx);
  return util::Status::ok();
}

util::Status NetworkFunction::remove_context(ContextId ctx) {
  if (ctx == kDefaultContext) {
    return util::invalid_argument("context 0 cannot be removed");
  }
  auto pos = std::lower_bound(contexts_.begin(), contexts_.end(), ctx);
  if (pos == contexts_.end() || *pos != ctx) {
    return util::not_found("context " + std::to_string(ctx));
  }
  contexts_.erase(pos);
  return util::Status::ok();
}

bool NetworkFunction::has_context(ContextId ctx) const {
  return std::binary_search(contexts_.begin(), contexts_.end(), ctx);
}

util::Status NetworkFunction::require_context(ContextId ctx) const {
  if (!has_context(ctx)) {
    return util::not_found("context " + std::to_string(ctx));
  }
  return util::Status::ok();
}

std::vector<NfOutput> NetworkFunction::process_burst(
    ContextId ctx, NfPortIndex in_port, sim::SimTime now,
    packet::PacketBurst&& burst) {
  std::vector<NfOutput> outputs;
  outputs.reserve(burst.size());
  for (packet::PacketBuffer& frame : burst) {
    auto one = process(ctx, in_port, now, std::move(frame));
    for (NfOutput& output : one) outputs.push_back(std::move(output));
  }
  burst.clear();
  return outputs;
}

}  // namespace nnfv::nnf
