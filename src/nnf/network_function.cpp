#include "nnf/network_function.hpp"

#include <algorithm>

namespace nnfv::nnf {

util::Status NetworkFunction::add_context(ContextId ctx) {
  if (std::find(contexts_.begin(), contexts_.end(), ctx) != contexts_.end()) {
    return util::already_exists("context " + std::to_string(ctx));
  }
  contexts_.push_back(ctx);
  return util::Status::ok();
}

util::Status NetworkFunction::remove_context(ContextId ctx) {
  if (ctx == kDefaultContext) {
    return util::invalid_argument("context 0 cannot be removed");
  }
  auto it = std::find(contexts_.begin(), contexts_.end(), ctx);
  if (it == contexts_.end()) {
    return util::not_found("context " + std::to_string(ctx));
  }
  contexts_.erase(it);
  return util::Status::ok();
}

bool NetworkFunction::has_context(ContextId ctx) const {
  return std::find(contexts_.begin(), contexts_.end(), ctx) !=
         contexts_.end();
}

util::Status NetworkFunction::require_context(ContextId ctx) const {
  if (!has_context(ctx)) {
    return util::not_found("context " + std::to_string(ctx));
  }
  return util::Status::ok();
}

}  // namespace nnfv::nnf
