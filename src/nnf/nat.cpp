#include "nnf/nat.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <shared_mutex>

#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

PortPool::PortPool(std::uint16_t first, std::size_t count)
    : first_(first), count_(count), bits_((count + 63) / 64, 0) {}

std::uint16_t PortPool::allocate() {
  if (used_ == count_) return 0;
  // Scan from the cursor, skipping fully-used 64-port words.
  const std::size_t words = bits_.size();
  std::uint32_t bit = cursor_;
  for (std::size_t scanned = 0; scanned <= words; ++scanned) {
    const std::size_t word = bit / 64;
    // Mask off bits below the cursor within the first word.
    std::uint64_t free_mask = ~bits_[word];
    if (bit % 64 != 0) free_mask &= ~0ULL << (bit % 64);
    if (word == words - 1 && count_ % 64 != 0) {
      free_mask &= (1ULL << (count_ % 64)) - 1;  // clip past-the-end bits
    }
    if (free_mask != 0) {
      const auto idx =
          static_cast<std::uint32_t>(word * 64 +
                                     std::countr_zero(free_mask));
      bits_[idx / 64] |= 1ULL << (idx % 64);
      ++used_;
      cursor_ = static_cast<std::uint32_t>((idx + 1) % count_);
      return static_cast<std::uint16_t>(first_ + idx);
    }
    bit = static_cast<std::uint32_t>(((word + 1) % words) * 64);
  }
  return 0;  // unreachable: used_ < count_ guarantees a free bit
}

void PortPool::release(std::uint16_t port) {
  if (port < first_) return;
  const std::uint32_t idx = static_cast<std::uint32_t>(port - first_);
  if (idx >= count_) return;
  const std::uint64_t mask = 1ULL << (idx % 64);
  if (bits_[idx / 64] & mask) {
    bits_[idx / 64] &= ~mask;
    --used_;
  }
}

bool PortPool::in_use(std::uint16_t port) const {
  if (port < first_) return false;
  const std::uint32_t idx = static_cast<std::uint32_t>(port - first_);
  if (idx >= count_) return false;
  return (bits_[idx / 64] >> (idx % 64)) & 1;
}

namespace {

/// Offsets of the fields NAT rewrites, relative to the L3 header.
struct L3View {
  std::size_t l3_off = 0;
  packet::Ipv4Header ip;
};

util::Result<L3View> locate_ip(packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth) return eth.status();
  if (eth->ether_type != packet::kEtherTypeIpv4) {
    return util::invalid_argument("not IPv4");
  }
  auto ip = packet::parse_ipv4(frame.data().subspan(eth->wire_size()));
  if (!ip) return ip.status();
  return L3View{eth->wire_size(), ip.value()};
}

/// Writes a new src/dst address + transport port into the frame, then fixes
/// checksums.
void rewrite(packet::PacketBuffer& frame, const L3View& view, bool rewrite_src,
             packet::Ipv4Address new_addr, std::uint16_t new_port) {
  frame.unshare();  // flooded replicas share bytes until first write
  packet::Ipv4Header ip = view.ip;
  if (rewrite_src) {
    ip.src = new_addr;
  } else {
    ip.dst = new_addr;
  }
  packet::write_ipv4(ip, frame.data().subspan(view.l3_off, ip.header_size()));
  const std::size_t l4_off = view.l3_off + ip.header_size();
  if (ip.protocol == packet::kIpProtoTcp ||
      ip.protocol == packet::kIpProtoUdp) {
    // Port field offset: src at 0, dst at 2.
    const std::size_t port_off = l4_off + (rewrite_src ? 0 : 2);
    util::store_be16(frame.data().data() + port_off, new_port);
  } else if (ip.protocol == packet::kIpProtoIcmp) {
    // Rewrite the echo identifier.
    util::store_be16(frame.data().data() + l4_off + 4, new_port);
  }
  packet::fix_checksums(frame);
}

/// The by_external key port: for ICMP echo replies the identifier is
/// carried in src_port by our extractor; the NAT allocated it as the
/// "external port".
std::uint16_t external_key_port(const packet::FiveTuple& tuple) {
  return tuple.protocol == packet::kIpProtoIcmp ? tuple.src_port
                                                : tuple.dst_port;
}

}  // namespace

util::Status Nat::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  ContextState& state = state_[ctx];
  std::unique_lock<std::shared_mutex> lock(state.mutex);
  for (const auto& [key, value] : config) {
    if (key == "external_ip") {
      auto addr = packet::Ipv4Address::parse(value);
      if (!addr.has_value()) {
        return util::invalid_argument("nat: bad external_ip '" + value + "'");
      }
      state.external_ip = *addr;
      state.external_ip_set = true;
    } else if (key == "idle_timeout_ms") {
      std::uint64_t ms = 0;
      if (!util::parse_u64(value, ms)) {
        return util::invalid_argument("nat: bad idle_timeout_ms '" + value +
                                      "'");
      }
      state.idle_timeout = static_cast<sim::SimTime>(ms) * sim::kMillisecond;
    } else {
      return util::invalid_argument("nat: unknown config key '" + key + "'");
    }
  }
  return util::Status::ok();
}

void Nat::set_worker_count(std::size_t workers) {
  worker_count_ = std::min<std::size_t>(workers, exec::kMaxWorkers);
  // Drop port pools that have no live allocation so they re-slice for
  // the new worker count on next use; pools holding sessions keep their
  // old slicing (release() depends on the slice boundaries).
  for (auto& [ctx, state] : state_) {
    std::unique_lock<std::shared_mutex> lock(state.mutex);
    for (auto it = state.ports.begin(); it != state.ports.end();) {
      const bool empty =
          std::all_of(it->second.begin(), it->second.end(),
                      [](const PortPool& pool) { return pool.used() == 0; });
      it = empty ? state.ports.erase(it) : std::next(it);
    }
  }
}

void Nat::sweep(ContextState& state, sim::SimTime now) {
  for (auto it = state.by_original.begin(); it != state.by_original.end();) {
    auto next = std::next(it);
    if (session_stale(state, it->second, now)) evict(state, it);
    it = next;
  }
  state.last_sweep = now;
}

void Nat::evict(ContextState& state, SessionMap::iterator it) {
  state.by_external.erase({it->first.protocol, it->second.external_port});
  auto pools = state.ports.find(it->first.protocol);
  if (pools != state.ports.end()) {
    // release() is a no-op on every slice but the owning one.
    for (PortPool& pool : pools->second) {
      pool.release(it->second.external_port);
    }
  }
  state.by_original.erase(it);
}

util::Result<std::uint16_t> Nat::allocate_port(ContextState& state,
                                               std::uint8_t protocol) {
  // O(1) bitmap allocation (see PortPool); the old code linearly probed up
  // to 64512 map entries when the pool ran hot.
  std::vector<PortPool>& slices = state.ports[protocol];
  if (slices.empty()) {
    // Slot 0 (control/inline thread) plus one slice per worker. With no
    // workers declared this is one slice spanning the whole range — the
    // exact single-threaded behaviour.
    const std::size_t n = worker_count_ + 1;
    const std::size_t per = PortPool::kPorts / n;
    std::uint16_t first = PortPool::kFirstPort;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t count =
          i + 1 == n ? PortPool::kPorts - per * (n - 1) : per;
      slices.emplace_back(first, count);
      if (i + 1 < n) first = static_cast<std::uint16_t>(first + count);
    }
  }
  const std::size_t slot =
      std::min<std::size_t>(exec::current_worker_slot(), slices.size() - 1);
  if (const std::uint16_t port = slices[slot].allocate(); port != 0) {
    return port;
  }
  // This worker's slice ran dry: steal from the others. Safe because
  // allocation only happens under the context's unique lock.
  for (PortPool& pool : slices) {
    if (const std::uint16_t port = pool.allocate(); port != 0) return port;
  }
  return util::resource_exhausted("nat: port pool exhausted");
}

std::vector<NfOutput> Nat::process(ContextId ctx, NfPortIndex in_port,
                                   sim::SimTime now,
                                   packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  ++counters_.in_packets;
  if (!has_context(ctx) || in_port >= 2) {
    ++counters_.errors;
    return out;
  }
  auto state_it = state_.find(ctx);
  if (state_it == state_.end() || !state_it->second.external_ip_set) {
    ++counters_.dropped;
    return out;
  }
  ContextState& state = state_it->second;
  auto view = locate_ip(frame);
  if (!view) {
    // Non-IP traffic passes through untranslated (L2 bridging behaviour).
    out.push_back(NfOutput{in_port == 0 ? 1u : 0u, std::move(frame)});
    ++counters_.out_packets;
    return out;
  }
  auto tuple =
      packet::extract_five_tuple(frame.data().subspan(view->l3_off));
  if (!tuple) {
    ++counters_.dropped;
    return out;
  }

  // Fast path: a fresh session hit with no sweep due touches only
  // atomics, so it runs under the shared lock — workers carrying
  // different flows proceed in parallel.
  {
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    if (!sweep_due(state, now)) {
      if (in_port == 0) {
        auto it = state.by_original.find(tuple.value());
        if (it != state.by_original.end() &&
            !session_stale(state, it->second, now)) {
          it->second.last_seen = now;
          rewrite(frame, view.value(), /*rewrite_src=*/true,
                  state.external_ip, it->second.external_port);
          out.push_back(NfOutput{1, std::move(frame)});
          ++counters_.out_packets;
          return out;
        }
        // Miss or stale hit: fall through to the slow path.
      } else {
        if (!(tuple->dst_ip == state.external_ip)) {
          ++counters_.dropped;
          return out;
        }
        auto ext = state.by_external.find(
            {tuple->protocol, external_key_port(tuple.value())});
        if (ext == state.by_external.end()) {
          ++counters_.dropped;
          return out;
        }
        auto session = state.by_original.find(ext->second);
        if (session != state.by_original.end() &&
            !session_stale(state, session->second, now)) {
          session->second.last_seen = now;
          const packet::FiveTuple original = session->second.original;
          rewrite(frame, view.value(), /*rewrite_src=*/false,
                  original.src_ip, original.src_port);
          out.push_back(NfOutput{0, std::move(frame)});
          ++counters_.out_packets;
          return out;
        }
        // Stale session: fall through to evict it under the unique lock.
      }
    }
  }

  // Slow path: session setup, stale eviction or the periodic sweep.
  std::unique_lock<std::shared_mutex> lock(state.mutex);
  if (sweep_due(state, now)) sweep(state, now);

  if (in_port == 0) {
    // Outbound: find or create a session.
    auto it = state.by_original.find(tuple.value());
    if (it != state.by_original.end() &&
        session_stale(state, it->second, now)) {
      evict(state, it);
      it = state.by_original.end();
    }
    if (it == state.by_original.end()) {
      auto port = allocate_port(state, tuple->protocol);
      if (!port) {
        ++counters_.dropped;
        return out;
      }
      Session session{tuple.value(), port.value(), now};
      it = state.by_original.emplace(tuple.value(), session).first;
      state.by_external[{tuple->protocol, port.value()}] = tuple.value();
    }
    it->second.last_seen = now;
    rewrite(frame, view.value(), /*rewrite_src=*/true, state.external_ip,
            it->second.external_port);
    out.push_back(NfOutput{1, std::move(frame)});
    ++counters_.out_packets;
    return out;
  }

  // Inbound: must match a tracked, fresh session and target the
  // external IP.
  if (!(tuple->dst_ip == state.external_ip)) {
    ++counters_.dropped;
    return out;
  }
  auto ext = state.by_external.find(
      {tuple->protocol, external_key_port(tuple.value())});
  if (ext == state.by_external.end()) {
    ++counters_.dropped;
    return out;
  }
  auto session = state.by_original.find(ext->second);
  if (session == state.by_original.end()) {
    state.by_external.erase(ext);
    ++counters_.dropped;
    return out;
  }
  if (session_stale(state, session->second, now)) {
    evict(state, session);
    ++counters_.dropped;
    return out;
  }
  session->second.last_seen = now;
  const packet::FiveTuple original = session->second.original;
  rewrite(frame, view.value(), /*rewrite_src=*/false, original.src_ip,
          original.src_port);
  out.push_back(NfOutput{0, std::move(frame)});
  ++counters_.out_packets;
  return out;
}

util::Status Nat::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  state_.erase(ctx);
  return util::Status::ok();
}

std::size_t Nat::session_count(ContextId ctx) const {
  auto it = state_.find(ctx);
  if (it == state_.end()) return 0;
  std::shared_lock<std::shared_mutex> lock(it->second.mutex);
  return it->second.by_original.size();
}

}  // namespace nnfv::nnf
