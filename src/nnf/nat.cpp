#include "nnf/nat.hpp"

#include <bit>

#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

std::uint16_t PortPool::allocate() {
  if (used_ == kPorts) return 0;
  // Scan from the cursor, skipping fully-used 64-port words.
  std::uint32_t bit = cursor_;
  for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
    const std::size_t word = bit / 64;
    // Mask off bits below the cursor within the first word.
    std::uint64_t free_mask = ~bits_[word];
    if (bit % 64 != 0) free_mask &= ~0ULL << (bit % 64);
    if (word == kWords - 1 && kPorts % 64 != 0) {
      free_mask &= (1ULL << (kPorts % 64)) - 1;  // clip past-the-end bits
    }
    if (free_mask != 0) {
      const auto idx =
          static_cast<std::uint32_t>(word * 64 +
                                     std::countr_zero(free_mask));
      bits_[idx / 64] |= 1ULL << (idx % 64);
      ++used_;
      cursor_ = (idx + 1) % kPorts;
      return static_cast<std::uint16_t>(kFirstPort + idx);
    }
    bit = static_cast<std::uint32_t>(((word + 1) % kWords) * 64);
  }
  return 0;  // unreachable: used_ < kPorts guarantees a free bit
}

void PortPool::release(std::uint16_t port) {
  if (port < kFirstPort) return;
  const std::uint32_t idx = static_cast<std::uint32_t>(port - kFirstPort);
  const std::uint64_t mask = 1ULL << (idx % 64);
  if (bits_[idx / 64] & mask) {
    bits_[idx / 64] &= ~mask;
    --used_;
  }
}

bool PortPool::in_use(std::uint16_t port) const {
  if (port < kFirstPort) return false;
  const std::uint32_t idx = static_cast<std::uint32_t>(port - kFirstPort);
  return (bits_[idx / 64] >> (idx % 64)) & 1;
}

namespace {

/// Offsets of the fields NAT rewrites, relative to the L3 header.
struct L3View {
  std::size_t l3_off = 0;
  packet::Ipv4Header ip;
};

util::Result<L3View> locate_ip(packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth) return eth.status();
  if (eth->ether_type != packet::kEtherTypeIpv4) {
    return util::invalid_argument("not IPv4");
  }
  auto ip = packet::parse_ipv4(frame.data().subspan(eth->wire_size()));
  if (!ip) return ip.status();
  return L3View{eth->wire_size(), ip.value()};
}

/// Writes a new src/dst address + transport port into the frame, then fixes
/// checksums.
void rewrite(packet::PacketBuffer& frame, const L3View& view, bool rewrite_src,
             packet::Ipv4Address new_addr, std::uint16_t new_port) {
  packet::Ipv4Header ip = view.ip;
  if (rewrite_src) {
    ip.src = new_addr;
  } else {
    ip.dst = new_addr;
  }
  packet::write_ipv4(ip, frame.data().subspan(view.l3_off, ip.header_size()));
  const std::size_t l4_off = view.l3_off + ip.header_size();
  if (ip.protocol == packet::kIpProtoTcp ||
      ip.protocol == packet::kIpProtoUdp) {
    // Port field offset: src at 0, dst at 2.
    const std::size_t port_off = l4_off + (rewrite_src ? 0 : 2);
    util::store_be16(frame.data().data() + port_off, new_port);
  } else if (ip.protocol == packet::kIpProtoIcmp) {
    // Rewrite the echo identifier.
    util::store_be16(frame.data().data() + l4_off + 4, new_port);
  }
  packet::fix_checksums(frame);
}

}  // namespace

util::Status Nat::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  ContextState& state = state_[ctx];
  for (const auto& [key, value] : config) {
    if (key == "external_ip") {
      auto addr = packet::Ipv4Address::parse(value);
      if (!addr.has_value()) {
        return util::invalid_argument("nat: bad external_ip '" + value + "'");
      }
      state.external_ip = *addr;
      state.external_ip_set = true;
    } else if (key == "idle_timeout_ms") {
      std::uint64_t ms = 0;
      if (!util::parse_u64(value, ms)) {
        return util::invalid_argument("nat: bad idle_timeout_ms '" + value +
                                      "'");
      }
      state.idle_timeout = static_cast<sim::SimTime>(ms) * sim::kMillisecond;
    } else {
      return util::invalid_argument("nat: unknown config key '" + key + "'");
    }
  }
  return util::Status::ok();
}

void Nat::expire(ContextState& state, sim::SimTime now) {
  for (auto it = state.by_original.begin(); it != state.by_original.end();) {
    if (now - it->second.last_seen > state.idle_timeout) {
      state.by_external.erase(
          {it->first.protocol, it->second.external_port});
      auto pool = state.ports.find(it->first.protocol);
      if (pool != state.ports.end()) {
        pool->second.release(it->second.external_port);
      }
      it = state.by_original.erase(it);
    } else {
      ++it;
    }
  }
}

util::Result<std::uint16_t> Nat::allocate_port(ContextState& state,
                                               std::uint8_t protocol) {
  // O(1) bitmap allocation (see PortPool); the old code linearly probed up
  // to 64512 map entries when the pool ran hot.
  const std::uint16_t port = state.ports[protocol].allocate();
  if (port == 0) {
    return util::resource_exhausted("nat: port pool exhausted");
  }
  return port;
}

std::vector<NfOutput> Nat::process(ContextId ctx, NfPortIndex in_port,
                                   sim::SimTime now,
                                   packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  ++counters_.in_packets;
  if (!has_context(ctx) || in_port >= 2) {
    ++counters_.errors;
    return out;
  }
  ContextState& state = state_[ctx];
  if (!state.external_ip_set) {
    ++counters_.dropped;
    return out;
  }
  auto view = locate_ip(frame);
  if (!view) {
    // Non-IP traffic passes through untranslated (L2 bridging behaviour).
    out.push_back(NfOutput{in_port == 0 ? 1u : 0u, std::move(frame)});
    ++counters_.out_packets;
    return out;
  }
  auto tuple =
      packet::extract_five_tuple(frame.data().subspan(view->l3_off));
  if (!tuple) {
    ++counters_.dropped;
    return out;
  }
  expire(state, now);

  if (in_port == 0) {
    // Outbound: find or create a session.
    auto it = state.by_original.find(tuple.value());
    if (it == state.by_original.end()) {
      auto port = allocate_port(state, tuple->protocol);
      if (!port) {
        ++counters_.dropped;
        return out;
      }
      Session session{tuple.value(), port.value(), now};
      it = state.by_original.emplace(tuple.value(), session).first;
      state.by_external[{tuple->protocol, port.value()}] = tuple.value();
    }
    it->second.last_seen = now;
    rewrite(frame, view.value(), /*rewrite_src=*/true, state.external_ip,
            it->second.external_port);
    out.push_back(NfOutput{1, std::move(frame)});
    ++counters_.out_packets;
    return out;
  }

  // Inbound: must match a tracked session and target the external IP.
  if (!(tuple->dst_ip == state.external_ip)) {
    ++counters_.dropped;
    return out;
  }
  auto ext = state.by_external.find({tuple->protocol, tuple->dst_port});
  if (tuple->protocol == packet::kIpProtoIcmp) {
    // For echo replies the identifier is carried in src_port by our
    // extractor; the NAT allocated it as the "external port".
    ext = state.by_external.find({tuple->protocol, tuple->src_port});
  }
  if (ext == state.by_external.end()) {
    ++counters_.dropped;
    return out;
  }
  const packet::FiveTuple& original = ext->second;
  auto session = state.by_original.find(original);
  if (session == state.by_original.end()) {
    ++counters_.dropped;
    return out;
  }
  session->second.last_seen = now;
  rewrite(frame, view.value(), /*rewrite_src=*/false, original.src_ip,
          original.src_port);
  out.push_back(NfOutput{0, std::move(frame)});
  ++counters_.out_packets;
  return out;
}

util::Status Nat::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  state_.erase(ctx);
  return util::Status::ok();
}

std::size_t Nat::session_count(ContextId ctx) const {
  auto it = state_.find(ctx);
  return it == state_.end() ? 0 : it->second.by_original.size();
}

}  // namespace nnfv::nnf
