// Token-bucket rate policer — the `tc police` role of a Linux CPE, the
// operator's tool for enforcing per-customer rate plans.
//
// Classic single-rate two-color policer: a bucket of `burst_bytes` tokens
// refills at `rate_bps`; conforming packets pass (port 0 <-> port 1),
// excess packets are dropped. Per-context buckets make it sharable (one
// tc, per-graph classes).
#pragma once

#include <map>

#include "nnf/network_function.hpp"

namespace nnfv::nnf {

struct PolicerStats {
  std::uint64_t conformed = 0;
  std::uint64_t exceeded = 0;
};

class TokenBucketPolicer : public NetworkFunction {
 public:
  TokenBucketPolicer() = default;

  [[nodiscard]] std::string_view type() const override { return "policer"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys:
  ///   rate_mbps    committed rate (decimal, required before traffic)
  ///   burst_kb     bucket depth; default 64
  ///   direction    "both" (default) | "up" (police port0->1 only)
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  [[nodiscard]] const PolicerStats& stats() const { return stats_; }
  /// Current fill of one context's bucket (tests).
  [[nodiscard]] double tokens(ContextId ctx) const;

 private:
  struct Bucket {
    double rate_bytes_per_ns = 0.0;  ///< 0 = unconfigured (pass all)
    double burst_bytes = 64.0 * 1024.0;
    double tokens = 64.0 * 1024.0;
    sim::SimTime last_refill = 0;
    bool police_up_only = false;
  };

  std::map<ContextId, Bucket> buckets_;
  PolicerStats stats_;
};

/// Plugin: sharable single-instance policer (one tc).
std::shared_ptr<class NnfPlugin> make_policer_plugin();

}  // namespace nnfv::nnf
