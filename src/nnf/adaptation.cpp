#include "nnf/adaptation.hpp"

#include "packet/builder.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

util::Status AdaptationLayer::bind(ContextId ctx, NfPortIndex port,
                                   Mark mark) {
  if (by_mark_.contains(mark)) {
    return util::already_exists("mark " + std::to_string(mark));
  }
  const std::pair<ContextId, NfPortIndex> path{ctx, port};
  if (by_path_.contains(path)) {
    return util::already_exists("binding for context " + std::to_string(ctx) +
                                " port " + std::to_string(port));
  }
  by_mark_[mark] = path;
  by_path_[path] = mark;
  return util::Status::ok();
}

std::size_t AdaptationLayer::unbind_context(ContextId ctx) {
  std::size_t removed = 0;
  for (auto it = by_path_.begin(); it != by_path_.end();) {
    if (it->first.first == ctx) {
      by_mark_.erase(it->second);
      it = by_path_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void AdaptationLayer::receive(sim::SimTime now,
                              packet::PacketBuffer&& frame) {
  ++stats_.in_frames;
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || !eth->vlan.has_value()) {
    ++stats_.untagged;
    return;
  }
  auto binding = by_mark_.find(*eth->vlan);
  if (binding == by_mark_.end()) {
    ++stats_.unmapped_in;
    return;
  }
  const auto [ctx, port] = binding->second;
  packet::set_vlan(frame, std::nullopt);  // present the NF untagged traffic

  std::vector<NfOutput> outputs = nf_.process(ctx, port, now,
                                              std::move(frame));
  for (NfOutput& output : outputs) {
    auto out_mark = by_path_.find({ctx, output.port});
    if (out_mark == by_path_.end()) {
      ++stats_.unmapped_out;
      continue;
    }
    packet::set_vlan(output.frame, out_mark->second);
    ++stats_.out_frames;
    if (tx_) tx_(std::move(output.frame));
  }
}

}  // namespace nnfv::nnf
