#include "nnf/adaptation.hpp"

#include "packet/builder.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

util::Status AdaptationLayer::bind(ContextId ctx, NfPortIndex port,
                                   Mark mark) {
  if (by_mark_.contains(mark)) {
    return util::already_exists("mark " + std::to_string(mark));
  }
  const std::pair<ContextId, NfPortIndex> path{ctx, port};
  if (by_path_.contains(path)) {
    return util::already_exists("binding for context " + std::to_string(ctx) +
                                " port " + std::to_string(port));
  }
  by_mark_[mark] = path;
  by_path_[path] = mark;
  return util::Status::ok();
}

std::size_t AdaptationLayer::unbind_context(ContextId ctx) {
  std::size_t removed = 0;
  for (auto it = by_path_.begin(); it != by_path_.end();) {
    if (it->first.first == ctx) {
      by_mark_.erase(it->second);
      it = by_path_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool AdaptationLayer::remark_output(ContextId ctx, NfOutput& output) {
  auto out_mark = by_path_.find({ctx, output.port});
  if (out_mark == by_path_.end()) {
    ++stats_.unmapped_out;
    return false;
  }
  packet::set_vlan(output.frame, out_mark->second);
  ++stats_.out_frames;
  return true;
}

void AdaptationLayer::receive(sim::SimTime now,
                              packet::PacketBuffer&& frame) {
  ++stats_.in_frames;
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || !eth->vlan.has_value()) {
    ++stats_.untagged;
    return;
  }
  auto binding = by_mark_.find(*eth->vlan);
  if (binding == by_mark_.end()) {
    ++stats_.unmapped_in;
    return;
  }
  const auto [ctx, port] = binding->second;
  packet::set_vlan(frame, std::nullopt);  // present the NF untagged traffic

  std::vector<NfOutput> outputs = nf_.process(ctx, port, now,
                                              std::move(frame));
  for (NfOutput& output : outputs) {
    if (!remark_output(ctx, output)) continue;
    if (tx_) tx_(std::move(output.frame));
  }
}

void AdaptationLayer::receive_burst(sim::SimTime now,
                                    packet::PacketBurst&& burst) {
  stats_.in_frames += burst.size();

  // Demultiplex on the mark and regroup per internal path, keeping
  // same-path frames in arrival order.
  packet::BurstGroups<std::pair<ContextId, NfPortIndex>> groups;
  for (packet::PacketBuffer& frame : burst) {
    auto eth = packet::parse_ethernet(frame.data());
    if (!eth || !eth->vlan.has_value()) {
      ++stats_.untagged;
      continue;
    }
    auto binding = by_mark_.find(*eth->vlan);
    if (binding == by_mark_.end()) {
      ++stats_.unmapped_in;
      continue;
    }
    packet::set_vlan(frame, std::nullopt);
    groups.add(binding->second, std::move(frame));
  }
  burst.clear();

  // One process_burst per path; outputs of the whole ingress burst leave
  // as one re-marked egress burst (or per frame without a burst transmit).
  packet::PacketBurst egress;
  for (auto& [path, group] : groups) {
    const auto [ctx, port] = path;
    std::vector<NfOutput> outputs =
        nf_.process_burst(ctx, port, now, std::move(group));
    for (NfOutput& output : outputs) {
      if (!remark_output(ctx, output)) continue;
      if (burst_tx_) {
        egress.push_back(std::move(output.frame));
      } else if (tx_) {
        tx_(std::move(output.frame));
      }
    }
  }
  if (burst_tx_ && !egress.empty()) burst_tx_(std::move(egress));
}

}  // namespace nnfv::nnf
