// AdaptationLayer: "an additional adaptation layer is required to cope with
// the fact that NNFs may be designed to receive traffic from a single
// network interface. Such layer attaches the NNF to one port of the switch
// and configures it to receive the traffic from multiple service graphs,
// appropriately marked to make it distinguishable." (paper §2)
//
// Concretely: one external attachment carries 802.1Q-marked frames. Each
// (context, logical NF port) pair is bound to a mark. On ingress the layer
// pops the tag and dispatches into the right internal path; on egress it
// re-tags with the mark of the (context, output port) pair so the switch
// can steer the frame back into the right graph.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "nnf/marking.hpp"
#include "nnf/network_function.hpp"

namespace nnfv::nnf {

struct AdaptationStats {
  std::uint64_t in_frames = 0;
  std::uint64_t out_frames = 0;
  std::uint64_t unmapped_in = 0;   ///< ingress mark with no binding
  std::uint64_t unmapped_out = 0;  ///< NF output port with no mark bound
  std::uint64_t untagged = 0;      ///< ingress frame without a mark
};

class AdaptationLayer {
 public:
  /// Transmit function toward the switch port this layer is attached to.
  using Transmit = std::function<void(packet::PacketBuffer&&)>;
  /// Burst-capable transmit: every (re-marked) frame the layer emits for
  /// one ingress burst leaves in a single call, preserving order.
  using BurstTransmit = std::function<void(packet::PacketBurst&&)>;

  explicit AdaptationLayer(NetworkFunction& nf) : nf_(nf) {}

  void set_transmit(Transmit tx) { tx_ = std::move(tx); }
  /// Preferred by receive_burst when set; receive() keeps using the
  /// per-frame transmit.
  void set_burst_transmit(BurstTransmit tx) { burst_tx_ = std::move(tx); }

  /// Binds `mark` to (ctx, port) in both directions.
  util::Status bind(ContextId ctx, NfPortIndex port, Mark mark);

  /// Removes all bindings of one context (graph teardown).
  std::size_t unbind_context(ContextId ctx);

  [[nodiscard]] std::size_t binding_count() const { return by_mark_.size(); }

  /// Frame arriving from the switch (must carry a bound mark).
  void receive(sim::SimTime now, packet::PacketBuffer&& frame);

  /// Burst arriving from the switch. Frames are demultiplexed on their
  /// marks and regrouped per (context, port) — order within a group is
  /// preserved — then each group is ONE process_burst call into the NF,
  /// so a single-interface NNF gets the same per-burst amortisation as a
  /// dedicated attachment. Per-packet NF subclasses are unaffected: the
  /// NetworkFunction::process_burst shim unrolls to N process() calls.
  void receive_burst(sim::SimTime now, packet::PacketBurst&& burst);

  [[nodiscard]] const AdaptationStats& stats() const { return stats_; }

 private:
  /// Re-marks one NF output with the mark of (ctx, port); returns false
  /// (and counts unmapped_out) when no mark is bound.
  bool remark_output(ContextId ctx, NfOutput& output);

  NetworkFunction& nf_;
  Transmit tx_;
  BurstTransmit burst_tx_;
  std::map<Mark, std::pair<ContextId, NfPortIndex>> by_mark_;
  std::map<std::pair<ContextId, NfPortIndex>, Mark> by_path_;
  AdaptationStats stats_;
};

}  // namespace nnfv::nnf
