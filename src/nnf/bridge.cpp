#include "nnf/bridge.hpp"

#include "util/strings.hpp"

namespace nnfv::nnf {

Bridge::Bridge(std::size_t ports) : ports_(ports < 2 ? 2 : ports) {}

util::Status Bridge::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  for (const auto& [key, value] : config) {
    if (key == "aging_time_ms") {
      std::uint64_t ms = 0;
      if (!util::parse_u64(value, ms)) {
        return util::invalid_argument("bridge: bad aging_time_ms '" + value +
                                      "'");
      }
      aging_time_ = static_cast<sim::SimTime>(ms) * sim::kMillisecond;
    } else {
      return util::invalid_argument("bridge: unknown config key '" + key +
                                    "'");
    }
  }
  return util::Status::ok();
}

std::vector<NfOutput> Bridge::process(ContextId ctx, NfPortIndex in_port,
                                      sim::SimTime now,
                                      packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  ++counters_.in_packets;
  if (!has_context(ctx) || in_port >= ports_) {
    ++counters_.errors;
    return out;
  }
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth) {
    ++counters_.errors;
    return out;
  }
  auto& table = fdb_[ctx];

  // Learn the source (unicast sources only).
  if (!eth->src.is_multicast()) {
    table[eth->src] = FdbEntry{in_port, now};
  }

  // Look up the destination, honouring aging.
  NfPortIndex dst_port = ports_;  // sentinel: flood
  if (!eth->dst.is_multicast() && !eth->dst.is_broadcast()) {
    auto it = table.find(eth->dst);
    if (it != table.end()) {
      if (now - it->second.learned_at > aging_time_) {
        table.erase(it);
      } else {
        dst_port = it->second.port;
      }
    }
  }

  if (dst_port < ports_) {
    if (dst_port != in_port) {  // never hairpin
      out.push_back(NfOutput{dst_port, std::move(frame)});
      ++counters_.out_packets;
    } else {
      ++counters_.dropped;
    }
    return out;
  }

  // Flood to all ports except the ingress.
  for (NfPortIndex p = 0; p < ports_; ++p) {
    if (p == in_port) continue;
    out.push_back(NfOutput{p, frame.clone()});
    ++counters_.out_packets;
  }
  return out;
}

util::Status Bridge::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  fdb_.erase(ctx);
  return util::Status::ok();
}

std::size_t Bridge::table_size(ContextId ctx) const {
  auto it = fdb_.find(ctx);
  return it == fdb_.end() ? 0 : it->second.size();
}

}  // namespace nnfv::nnf
