#include "nnf/dhcp.hpp"

#include <cstring>

#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/flow_key.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {

namespace {

// BOOTP fixed header (RFC 2131 §2): 236 bytes before options.
constexpr std::size_t kBootpFixedSize = 236;
constexpr std::uint32_t kDhcpMagic = 0x63825363;

constexpr std::uint8_t kOptPad = 0;
constexpr std::uint8_t kOptSubnetMask = 1;
constexpr std::uint8_t kOptRouter = 3;
constexpr std::uint8_t kOptRequestedIp = 50;
constexpr std::uint8_t kOptLeaseTime = 51;
constexpr std::uint8_t kOptMessageType = 53;
constexpr std::uint8_t kOptServerId = 54;
constexpr std::uint8_t kOptEnd = 255;

util::Status parse_ip_config(const NfConfig& config, const std::string& key,
                             packet::Ipv4Address& out, bool& present) {
  auto it = config.find(key);
  if (it == config.end()) {
    present = false;
    return util::Status::ok();
  }
  auto addr = packet::Ipv4Address::parse(it->second);
  if (!addr.has_value()) {
    return util::invalid_argument("dhcp: bad " + key + " '" + it->second +
                                  "'");
  }
  out = *addr;
  present = true;
  return util::Status::ok();
}

}  // namespace

util::Result<DhcpMessage> parse_dhcp(std::span<const std::uint8_t> payload) {
  if (payload.size() < kBootpFixedSize + 4 + 3) {
    return util::invalid_argument("DHCP message too short");
  }
  DhcpMessage msg;
  msg.op = payload[0];
  // htype must be Ethernet (1), hlen 6.
  if (payload[1] != 1 || payload[2] != 6) {
    return util::invalid_argument("DHCP: unsupported hardware type");
  }
  msg.xid = util::load_be32(payload.data() + 4);
  msg.ciaddr.value = util::load_be32(payload.data() + 12);
  msg.yiaddr.value = util::load_be32(payload.data() + 16);
  std::copy_n(payload.data() + 28, 6, msg.client_mac.bytes.begin());
  if (util::load_be32(payload.data() + kBootpFixedSize) != kDhcpMagic) {
    return util::invalid_argument("DHCP: bad magic cookie");
  }
  // Options.
  std::size_t pos = kBootpFixedSize + 4;
  while (pos < payload.size()) {
    const std::uint8_t code = payload[pos++];
    if (code == kOptEnd) break;
    if (code == kOptPad) continue;
    if (pos >= payload.size()) {
      return util::invalid_argument("DHCP: truncated option");
    }
    const std::uint8_t len = payload[pos++];
    if (pos + len > payload.size()) {
      return util::invalid_argument("DHCP: option overruns message");
    }
    switch (code) {
      case kOptMessageType:
        if (len != 1) return util::invalid_argument("DHCP: bad option 53");
        msg.message_type = payload[pos];
        break;
      case kOptRequestedIp:
        if (len != 4) return util::invalid_argument("DHCP: bad option 50");
        msg.requested_ip =
            packet::Ipv4Address{util::load_be32(payload.data() + pos)};
        break;
      case kOptServerId:
        if (len != 4) return util::invalid_argument("DHCP: bad option 54");
        msg.server_id =
            packet::Ipv4Address{util::load_be32(payload.data() + pos)};
        break;
      default:
        break;  // ignore unknown options
    }
    pos += len;
  }
  if (msg.message_type == 0) {
    return util::invalid_argument("DHCP: missing message type option");
  }
  return msg;
}

util::Status DhcpServer::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  ContextState& state = state_[ctx];
  bool present = false;
  for (const auto& [key, value] : config) {
    if (key == "server_ip" || key == "pool_start" || key == "pool_end" ||
        key == "subnet_mask") {
      continue;  // handled below (order-independent)
    }
    if (key == "lease_time_ms") {
      std::uint64_t ms = 0;
      if (!util::parse_u64(value, ms) || ms == 0) {
        return util::invalid_argument("dhcp: bad lease_time_ms '" + value +
                                      "'");
      }
      state.lease_time = static_cast<sim::SimTime>(ms) * sim::kMillisecond;
    } else {
      return util::invalid_argument("dhcp: unknown config key '" + key + "'");
    }
  }
  NNFV_RETURN_IF_ERROR(
      parse_ip_config(config, "server_ip", state.server_ip, present));
  NNFV_RETURN_IF_ERROR(
      parse_ip_config(config, "pool_start", state.pool_start, present));
  NNFV_RETURN_IF_ERROR(
      parse_ip_config(config, "pool_end", state.pool_end, present));
  NNFV_RETURN_IF_ERROR(
      parse_ip_config(config, "subnet_mask", state.subnet_mask, present));

  if (state.pool_start.value != 0 || state.pool_end.value != 0) {
    if (state.pool_start.value == 0 || state.pool_end.value == 0 ||
        state.pool_end < state.pool_start) {
      return util::invalid_argument("dhcp: bad pool range");
    }
  }
  state.configured = state.server_ip.value != 0 &&
                     state.pool_start.value != 0 &&
                     state.pool_end.value != 0;
  return util::Status::ok();
}

util::Result<packet::Ipv4Address> DhcpServer::allocate(
    ContextState& state, const packet::MacAddress& mac, sim::SimTime now,
    std::optional<packet::Ipv4Address> requested) {
  // Expire stale leases.
  for (auto it = state.leases.begin(); it != state.leases.end();) {
    if (it->second.expires <= now) {
      it = state.leases.erase(it);
    } else {
      ++it;
    }
  }
  // Sticky: a client keeps its lease.
  for (const auto& [ip, lease] : state.leases) {
    if (lease.mac == mac) return packet::Ipv4Address{ip};
  }
  // Honour a requested address inside the pool when free.
  if (requested.has_value() && state.pool_start <= *requested &&
      *requested <= state.pool_end &&
      !state.leases.contains(requested->value)) {
    return *requested;
  }
  // First free address.
  for (std::uint32_t ip = state.pool_start.value; ip <= state.pool_end.value;
       ++ip) {
    if (!state.leases.contains(ip)) return packet::Ipv4Address{ip};
  }
  ++stats_.pool_exhausted;
  return util::resource_exhausted("dhcp pool exhausted");
}

packet::PacketBuffer DhcpServer::build_reply(const ContextState& state,
                                             const DhcpMessage& request,
                                             std::uint8_t reply_type,
                                             packet::Ipv4Address yiaddr) {
  // BOOTP fixed part + cookie + options (53,54,1,3,51,255 < 32 bytes).
  std::vector<std::uint8_t> payload(kBootpFixedSize + 4 + 32, 0);
  payload[0] = 2;  // BOOTREPLY
  payload[1] = 1;  // Ethernet
  payload[2] = 6;
  util::store_be32(payload.data() + 4, request.xid);
  util::store_be32(payload.data() + 16, yiaddr.value);
  util::store_be32(payload.data() + 20, state.server_ip.value);  // siaddr
  std::copy(request.client_mac.bytes.begin(), request.client_mac.bytes.end(),
            payload.begin() + 28);
  util::store_be32(payload.data() + kBootpFixedSize, kDhcpMagic);

  std::size_t pos = kBootpFixedSize + 4;
  auto put_option = [&](std::uint8_t code, std::uint32_t value,
                        std::uint8_t len) {
    payload[pos++] = code;
    payload[pos++] = len;
    if (len == 4) {
      util::store_be32(payload.data() + pos, value);
    } else {
      payload[pos] = static_cast<std::uint8_t>(value);
    }
    pos += len;
  };
  put_option(kOptMessageType, reply_type, 1);
  put_option(kOptServerId, state.server_ip.value, 4);
  if (reply_type != kDhcpNak) {
    put_option(kOptSubnetMask, state.subnet_mask.value, 4);
    put_option(kOptRouter, state.server_ip.value, 4);
    put_option(kOptLeaseTime,
               static_cast<std::uint32_t>(state.lease_time / sim::kSecond),
               4);
  }
  payload[pos++] = kOptEnd;
  payload.resize(pos);

  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0xD0);  // server NIC
  spec.eth_dst = request.client_mac;
  spec.ip_src = state.server_ip;
  spec.ip_dst = reply_type == kDhcpNak ? packet::Ipv4Address{0xFFFFFFFF}
                                       : yiaddr;
  spec.src_port = 67;
  spec.dst_port = 68;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

std::vector<NfOutput> DhcpServer::process(ContextId ctx, NfPortIndex in_port,
                                          sim::SimTime now,
                                          packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  if (!has_context(ctx) || in_port != 0) return out;
  auto it = state_.find(ctx);
  if (it == state_.end() || !it->second.configured) return out;
  ContextState& state = it->second;

  // Must be UDP to port 67.
  auto fields = packet::extract_flow_fields(frame.data());
  if (!fields || !fields->ipv4.has_value() ||
      fields->ipv4->protocol != packet::kIpProtoUdp ||
      fields->l4_dst.value_or(0) != 67) {
    return out;  // not for us; DHCP NF consumes only server traffic
  }
  const std::size_t payload_off = fields->eth.wire_size() +
                                  fields->ipv4->header_size() +
                                  packet::kUdpHeaderSize;
  if (payload_off >= frame.size()) {
    ++stats_.malformed;
    return out;
  }
  auto msg = parse_dhcp(frame.data().subspan(payload_off));
  if (!msg || msg->op != 1) {
    ++stats_.malformed;
    return out;
  }

  switch (msg->message_type) {
    case kDhcpDiscover: {
      ++stats_.discovers;
      auto ip = allocate(state, msg->client_mac, now, msg->requested_ip);
      if (!ip) return out;
      // Offers are tentative: reserve briefly so parallel discovers do not
      // collide, but let REQUEST set the real lease.
      state.leases[ip->value] =
          Lease{msg->client_mac, now + 10 * sim::kSecond};
      ++stats_.offers;
      out.push_back(NfOutput{0, build_reply(state, *msg, kDhcpOffer, *ip)});
      return out;
    }
    case kDhcpRequest: {
      ++stats_.requests;
      // A request for another server's offer is none of our business.
      if (msg->server_id.has_value() &&
          !(msg->server_id == state.server_ip)) {
        return out;
      }
      packet::Ipv4Address wanted =
          msg->requested_ip.value_or(msg->ciaddr);
      const bool ours = state.pool_start <= wanted &&
                        wanted <= state.pool_end;
      bool free_or_mine = true;
      auto lease = state.leases.find(wanted.value);
      if (lease != state.leases.end() && lease->second.expires > now &&
          !(lease->second.mac == msg->client_mac)) {
        free_or_mine = false;
      }
      if (!ours || !free_or_mine) {
        ++stats_.naks;
        out.push_back(NfOutput{
            0, build_reply(state, *msg, kDhcpNak, packet::Ipv4Address{})});
        return out;
      }
      state.leases[wanted.value] =
          Lease{msg->client_mac, now + state.lease_time};
      ++stats_.acks;
      out.push_back(NfOutput{0, build_reply(state, *msg, kDhcpAck, wanted)});
      return out;
    }
    case kDhcpRelease: {
      ++stats_.releases;
      auto lease = state.leases.find(msg->ciaddr.value);
      if (lease != state.leases.end() &&
          lease->second.mac == msg->client_mac) {
        state.leases.erase(lease);
      }
      return out;
    }
    default:
      return out;  // INFORM/DECLINE etc. ignored in this implementation
  }
}

util::Status DhcpServer::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  state_.erase(ctx);
  return util::Status::ok();
}

std::size_t DhcpServer::active_leases(ContextId ctx, sim::SimTime now) const {
  auto it = state_.find(ctx);
  if (it == state_.end()) return 0;
  std::size_t count = 0;
  for (const auto& [ip, lease] : it->second.leases) {
    if (lease.expires > now) ++count;
  }
  return count;
}

}  // namespace nnfv::nnf
