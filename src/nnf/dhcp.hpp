// DHCP server NF — the dnsmasq-style address service every Linux CPE
// ships, one of the "native" functions the paper's premise builds on.
//
// Implements the BOOTP/DHCP wire format (RFC 2131/2132) far enough for a
// full DORA handshake: DISCOVER -> OFFER, REQUEST -> ACK (or NAK when the
// requested address is not ours to give), plus RELEASE. Leases come from
// a per-context pool with expiry, so the server is sharable across
// service graphs (isolated pools per internal path).
//
// Single logical port (port 0 = LAN side): this NF exercises the
// single_interface / adaptation-layer machinery.
#pragma once

#include <map>
#include <optional>

#include "nnf/network_function.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

/// Decoded subset of a DHCP message (fixed header + the options we use).
struct DhcpMessage {
  std::uint8_t op = 0;  ///< 1 = BOOTREQUEST, 2 = BOOTREPLY
  std::uint32_t xid = 0;
  packet::MacAddress client_mac;
  packet::Ipv4Address ciaddr;  ///< client's current address (renew)
  packet::Ipv4Address yiaddr;  ///< "your" address (server -> client)
  std::uint8_t message_type = 0;  ///< option 53
  std::optional<packet::Ipv4Address> requested_ip;   ///< option 50
  std::optional<packet::Ipv4Address> server_id;      ///< option 54
};

inline constexpr std::uint8_t kDhcpDiscover = 1;
inline constexpr std::uint8_t kDhcpOffer = 2;
inline constexpr std::uint8_t kDhcpRequest = 3;
inline constexpr std::uint8_t kDhcpAck = 5;
inline constexpr std::uint8_t kDhcpNak = 6;
inline constexpr std::uint8_t kDhcpRelease = 7;

/// Parses a DHCP payload (UDP payload, starting at the BOOTP `op` byte).
util::Result<DhcpMessage> parse_dhcp(std::span<const std::uint8_t> payload);

struct DhcpStats {
  std::uint64_t discovers = 0;
  std::uint64_t offers = 0;
  std::uint64_t requests = 0;
  std::uint64_t acks = 0;
  std::uint64_t naks = 0;
  std::uint64_t releases = 0;
  std::uint64_t malformed = 0;
  std::uint64_t pool_exhausted = 0;
};

class DhcpServer : public NetworkFunction {
 public:
  DhcpServer() = default;

  [[nodiscard]] std::string_view type() const override { return "dhcp"; }
  [[nodiscard]] std::size_t num_ports() const override { return 1; }

  /// Config keys (per context):
  ///   server_ip      e.g. "192.168.1.1"   (also the offered router)
  ///   pool_start     e.g. "192.168.1.100"
  ///   pool_end       e.g. "192.168.1.199"
  ///   subnet_mask    default "255.255.255.0"
  ///   lease_time_ms  default 3600000
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  [[nodiscard]] std::size_t active_leases(ContextId ctx,
                                          sim::SimTime now) const;
  [[nodiscard]] const DhcpStats& stats() const { return stats_; }

 private:
  struct Lease {
    packet::MacAddress mac;
    sim::SimTime expires = 0;
  };

  struct ContextState {
    packet::Ipv4Address server_ip;
    packet::Ipv4Address pool_start;
    packet::Ipv4Address pool_end;
    packet::Ipv4Address subnet_mask{0xFFFFFF00};
    sim::SimTime lease_time = 3600 * sim::kSecond;
    bool configured = false;
    std::map<std::uint32_t, Lease> leases;  ///< ip -> lease
  };

  util::Result<packet::Ipv4Address> allocate(ContextState& state,
                                             const packet::MacAddress& mac,
                                             sim::SimTime now,
                                             std::optional<packet::Ipv4Address>
                                                 requested);

  packet::PacketBuffer build_reply(const ContextState& state,
                                   const DhcpMessage& request,
                                   std::uint8_t reply_type,
                                   packet::Ipv4Address yiaddr);

  std::map<ContextId, ContextState> state_;
  DhcpStats stats_;
};

}  // namespace nnfv::nnf
