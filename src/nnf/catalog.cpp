#include "nnf/catalog.hpp"

namespace nnfv::nnf {

util::Status NnfCatalog::register_plugin(std::shared_ptr<NnfPlugin> plugin) {
  if (plugin == nullptr) return util::invalid_argument("null plugin");
  const std::string& type = plugin->descriptor().functional_type;
  if (type.empty()) {
    return util::invalid_argument("plugin with empty functional type");
  }
  if (plugins_.contains(type)) {
    return util::already_exists("NNF plugin '" + type + "'");
  }
  plugins_[type] = std::move(plugin);
  status_[type] = NnfStatus{};
  return util::Status::ok();
}

bool NnfCatalog::has(const std::string& functional_type) const {
  return plugins_.contains(functional_type);
}

util::Result<std::shared_ptr<NnfPlugin>> NnfCatalog::plugin(
    const std::string& functional_type) const {
  auto it = plugins_.find(functional_type);
  if (it == plugins_.end()) {
    return util::not_found("NNF plugin '" + functional_type + "'");
  }
  return it->second;
}

std::vector<std::string> NnfCatalog::types() const {
  std::vector<std::string> out;
  out.reserve(plugins_.size());
  for (const auto& [type, plugin] : plugins_) out.push_back(type);
  return out;
}

NnfStatus& NnfCatalog::status(const std::string& functional_type) {
  return status_[functional_type];
}

const NnfStatus* NnfCatalog::status_of(
    const std::string& functional_type) const {
  auto it = status_.find(functional_type);
  return it == status_.end() ? nullptr : &it->second;
}

bool NnfCatalog::can_instantiate(const std::string& functional_type) const {
  auto it = plugins_.find(functional_type);
  if (it == plugins_.end()) return false;
  const NnfStatus* status = status_of(functional_type);
  const std::size_t running = status == nullptr ? 0 : status->running_instances;
  return running < it->second->descriptor().max_instances;
}

bool NnfCatalog::can_share(const std::string& functional_type) const {
  auto it = plugins_.find(functional_type);
  if (it == plugins_.end()) return false;
  if (!it->second->descriptor().sharable) return false;
  const NnfStatus* status = status_of(functional_type);
  return status != nullptr && status->running_instances > 0;
}

NnfCatalog NnfCatalog::with_builtin_plugins() {
  NnfCatalog catalog;
  (void)catalog.register_plugin(make_bridge_plugin());
  (void)catalog.register_plugin(make_firewall_plugin());
  (void)catalog.register_plugin(make_nat_plugin());
  (void)catalog.register_plugin(make_ipsec_plugin());
  return catalog;
}

}  // namespace nnfv::nnf
