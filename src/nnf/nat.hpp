// Source NAT (masquerade) with connection tracking — the iptables NAT role.
//
// Port 0 = inside (private), port 1 = outside (public). Outbound packets
// get their source rewritten to the external IP and an allocated port;
// inbound packets matching a tracked connection are rewritten back and
// forwarded inside; unsolicited inbound traffic is dropped. Per-context
// conntrack tables and disjoint port pools make the NAT sharable across
// service graphs.
//
// Threading (docs/datapath.md §6): each context carries a shared_mutex.
// Steady-state packets (session hit, not stale, no sweep due) run under a
// shared lock and only touch atomics (last_seen, counters). Session
// creation, stale eviction and the periodic sweep take the unique lock.
// Port allocation draws from the calling worker's slice of the port
// range (set_worker_count()), so concurrent flow setup on different
// workers never fights over one allocation cursor.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "exec/worker_slot.hpp"
#include "nnf/network_function.hpp"
#include "packet/flow_key.hpp"
#include "util/atomics.hpp"
#include "util/sync.hpp"

namespace nnfv::nnf {

/// Allocation state for a contiguous slice of the NAT port range of one
/// protocol: a bitmap plus a rotating cursor. Allocation scans whole
/// 64-bit words from the cursor, so it skips 64 busy ports per load and
/// stays O(1) amortised even with the pool nearly exhausted (the old
/// code probed up to 64512 map entries); exhaustion itself is an O(1)
/// counter check.
class PortPool {
 public:
  static constexpr std::uint16_t kFirstPort = 1024;
  static constexpr std::size_t kPorts = 65536 - kFirstPort;

  /// The whole 1024..65535 range (single-threaded default).
  PortPool() : PortPool(kFirstPort, kPorts) {}
  /// A slice [first, first + count) of the range, one worker's share.
  PortPool(std::uint16_t first, std::size_t count);

  /// Next free port at or after the cursor (wrapping), or 0 if exhausted.
  std::uint16_t allocate();
  /// No-op for ports outside this slice, so an owner scan over all
  /// slices frees a port exactly once.
  void release(std::uint16_t port);
  [[nodiscard]] bool in_use(std::uint16_t port) const;
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::uint16_t first_port() const { return first_; }
  [[nodiscard]] std::size_t capacity() const { return count_; }

 private:
  std::uint16_t first_ = kFirstPort;
  std::size_t count_ = kPorts;
  std::vector<std::uint64_t> bits_;  ///< 1 = in use
  std::size_t used_ = 0;
  std::uint32_t cursor_ = 0;  ///< bit index of the next candidate
};

class Nat : public NetworkFunction {
 public:
  Nat() = default;

  [[nodiscard]] std::string_view type() const override { return "nat"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys: "external_ip" (required before traffic),
  /// "idle_timeout_ms" (default 30000).
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  /// Declares how many datapath workers will drive this NAT. Divides
  /// each per-protocol port pool into workers + 1 disjoint slices (slot
  /// 0 = the control/inline thread), so concurrent allocations never
  /// share a cursor. Must be called while quiesced; pools that already
  /// hold sessions keep their old slicing.
  void set_worker_count(std::size_t workers);

  [[nodiscard]] std::size_t session_count(ContextId ctx) const;
  [[nodiscard]] const NfCounters& counters() const { return counters_; }

 private:
  struct Session {
    packet::FiveTuple original;      ///< inside view, outbound direction
    std::uint16_t external_port = 0;
    /// Written under the shared lock by whichever worker carries the
    /// packet (outbound and inbound directions hash to different
    /// workers), hence atomic.
    util::Relaxed<sim::SimTime> last_seen{0};
  };

  struct ContextState {
    packet::Ipv4Address external_ip;
    bool external_ip_set = false;
    sim::SimTime idle_timeout = 30 * sim::kSecond;
    /// Outbound lookup: original tuple -> session.
    std::unordered_map<packet::FiveTuple, Session, packet::FiveTupleHash>
        by_original;
    /// Inbound lookup: (protocol, external port) -> original tuple.
    std::map<std::pair<std::uint8_t, std::uint16_t>, packet::FiveTuple>
        by_external;
    /// Per-worker-slot port slices per protocol, built lazily on first
    /// allocation (so they see the final worker count).
    std::map<std::uint8_t, std::vector<PortPool>> ports;
    /// Last time the full expiry sweep ran (sweeps are cadence-based
    /// now, not per-packet; staleness is also checked on every hit).
    sim::SimTime last_sweep = 0;
    /// Guards the three tables above; see the file comment.
    mutable util::SharedMutex mutex;
  };

  using SessionMap =
      std::unordered_map<packet::FiveTuple, Session, packet::FiveTupleHash>;

  [[nodiscard]] static bool session_stale(const ContextState& state,
                                          const Session& session,
                                          sim::SimTime now) {
    return now - session.last_seen.load() > state.idle_timeout;
  }
  [[nodiscard]] static bool sweep_due(const ContextState& state,
                                      sim::SimTime now) {
    return now - state.last_sweep >= state.idle_timeout;
  }

  /// Full-table sweep; requires the context's unique lock.
  void sweep(ContextState& state, sim::SimTime now);
  /// Removes one session (both maps + port); unique lock required.
  void evict(ContextState& state, SessionMap::iterator it);
  util::Result<std::uint16_t> allocate_port(ContextState& state,
                                            std::uint8_t protocol);

  /// Read-only during traffic (contexts are added/removed quiesced);
  /// per-context locking lives inside ContextState.
  std::map<ContextId, ContextState> state_;
  std::size_t worker_count_ = 0;
  NfCounters counters_;
};

}  // namespace nnfv::nnf
