// Source NAT (masquerade) with connection tracking — the iptables NAT role.
//
// Port 0 = inside (private), port 1 = outside (public). Outbound packets
// get their source rewritten to the external IP and an allocated port;
// inbound packets matching a tracked connection are rewritten back and
// forwarded inside; unsolicited inbound traffic is dropped. Per-context
// conntrack tables and disjoint port pools make the NAT sharable across
// service graphs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "nnf/network_function.hpp"
#include "packet/flow_key.hpp"

namespace nnfv::nnf {

/// Allocation state for the 1024..65535 NAT port range of one protocol:
/// a bitmap plus a rotating cursor. Allocation scans whole 64-bit words
/// from the cursor, so it skips 64 busy ports per load and stays O(1)
/// amortised even with the pool nearly exhausted (the old code probed up
/// to 64512 map entries); exhaustion itself is an O(1) counter check.
class PortPool {
 public:
  static constexpr std::uint16_t kFirstPort = 1024;
  static constexpr std::size_t kPorts = 65536 - kFirstPort;

  /// Next free port at or after the cursor (wrapping), or 0 if exhausted.
  std::uint16_t allocate();
  void release(std::uint16_t port);
  [[nodiscard]] bool in_use(std::uint16_t port) const;
  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  static constexpr std::size_t kWords = (kPorts + 63) / 64;

  std::array<std::uint64_t, kWords> bits_{};  ///< 1 = in use
  std::size_t used_ = 0;
  std::uint32_t cursor_ = 0;  ///< bit index of the next candidate
};

class Nat : public NetworkFunction {
 public:
  Nat() = default;

  [[nodiscard]] std::string_view type() const override { return "nat"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys: "external_ip" (required before traffic),
  /// "idle_timeout_ms" (default 30000).
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  util::Status remove_context(ContextId ctx) override;

  [[nodiscard]] std::size_t session_count(ContextId ctx) const;
  [[nodiscard]] const NfCounters& counters() const { return counters_; }

 private:
  struct Session {
    packet::FiveTuple original;      ///< inside view, outbound direction
    std::uint16_t external_port = 0;
    sim::SimTime last_seen = 0;
  };

  struct ContextState {
    packet::Ipv4Address external_ip;
    bool external_ip_set = false;
    sim::SimTime idle_timeout = 30 * sim::kSecond;
    /// Outbound lookup: original tuple -> session.
    std::unordered_map<packet::FiveTuple, Session, packet::FiveTupleHash>
        by_original;
    /// Inbound lookup: (protocol, external port) -> original tuple.
    std::map<std::pair<std::uint8_t, std::uint16_t>, packet::FiveTuple>
        by_external;
    /// Free-port tracking per protocol (allocation order matches the old
    /// sequential-scan behaviour).
    std::map<std::uint8_t, PortPool> ports;
  };

  void expire(ContextState& state, sim::SimTime now);
  util::Result<std::uint16_t> allocate_port(ContextState& state,
                                            std::uint8_t protocol);

  std::map<ContextId, ContextState> state_;
  NfCounters counters_;
};

}  // namespace nnfv::nnf
