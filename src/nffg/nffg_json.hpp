// NF-FG JSON wire format, the REST payload of the local orchestrator.
//
// Schema (un-orchestrator style):
// {
//   "forwarding-graph": {
//     "id": "g1", "name": "customer graph",
//     "VNFs": [
//       {"id": "fw", "functional_type": "firewall", "ports": 2,
//        "backend": "native",                      // optional hint
//        "config": {"policy": "accept"}}           // optional
//     ],
//     "end-points": [
//       {"id": "lan", "interface": "eth0", "vlan": 10}   // vlan optional
//     ],
//     "flow-rules": [
//       {"id": "r1", "priority": 10,
//        "match": {"port_in": "endpoint:lan", "ip_proto": 17,
//                  "ip_dst": "10.0.0.1/32", "tp_dst": 5001},
//        "action": {"output": "vnf:fw:0"}}
//     ]
//   }
// }
#pragma once

#include "json/json.hpp"
#include "nffg/nffg.hpp"
#include "util/status.hpp"

namespace nnfv::nffg {

/// Parses an NF-FG document. Structural errors (missing/mistyped fields)
/// are invalid_argument; referential integrity is checked by validate().
util::Result<NfFg> from_json(const json::Value& doc);

/// Convenience: parse from text.
util::Result<NfFg> from_json_text(std::string_view text);

/// Serializes; from_json(to_json(g)) is the identity on valid graphs.
json::Value to_json(const NfFg& graph);

}  // namespace nnfv::nffg
