// NF-FG referential validation, run by the orchestrator before deployment.
#pragma once

#include "nffg/nffg.hpp"
#include "util/status.hpp"

namespace nnfv::nffg {

/// Checks a graph for internal consistency:
///  * non-empty graph id; unique NF / endpoint / rule ids
///  * every rule references existing NFs (with in-range port indices) or
///    existing endpoints
///  * every NF port and endpoint is reachable (referenced by >= 1 rule) —
///    violations are warnings collected in `warnings` (deployment still
///    proceeds, matching the permissive un-orchestrator behaviour)
///  * endpoints on the same interface must use distinct VLANs (LSI-0 must
///    be able to classify them apart)
util::Status validate(const NfFg& graph,
                      std::vector<std::string>* warnings = nullptr);

}  // namespace nnfv::nffg
