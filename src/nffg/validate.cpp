#include "nffg/validate.hpp"

#include <map>
#include <set>

namespace nnfv::nffg {

using util::invalid_argument;
using util::Status;

namespace {

Status check_ref(const NfFg& graph, const PortRef& ref,
                 const std::string& rule_id) {
  if (ref.kind == PortRef::Kind::kEndpoint) {
    if (graph.find_endpoint(ref.id) == nullptr) {
      return invalid_argument("rule '" + rule_id +
                              "' references unknown endpoint '" + ref.id +
                              "'");
    }
    return Status::ok();
  }
  const NfNode* nf = graph.find_nf(ref.id);
  if (nf == nullptr) {
    return invalid_argument("rule '" + rule_id +
                            "' references unknown NF '" + ref.id + "'");
  }
  if (ref.port >= nf->num_ports) {
    return invalid_argument("rule '" + rule_id + "' references port " +
                            std::to_string(ref.port) + " of NF '" + ref.id +
                            "' which has " + std::to_string(nf->num_ports) +
                            " ports");
  }
  return Status::ok();
}

}  // namespace

Status validate(const NfFg& graph, std::vector<std::string>* warnings) {
  if (graph.id.empty()) return invalid_argument("graph id empty");

  std::set<std::string> nf_ids;
  for (const NfNode& nf : graph.nfs) {
    if (nf.id.empty()) return invalid_argument("NF with empty id");
    if (nf.functional_type.empty()) {
      return invalid_argument("NF '" + nf.id + "' has empty functional type");
    }
    if (nf.num_ports == 0) {
      return invalid_argument("NF '" + nf.id + "' has zero ports");
    }
    if (!nf_ids.insert(nf.id).second) {
      return invalid_argument("duplicate NF id '" + nf.id + "'");
    }
  }

  std::set<std::string> ep_ids;
  std::map<std::string, std::set<std::uint16_t>> iface_vlans;
  std::map<std::string, int> iface_untagged;
  for (const Endpoint& ep : graph.endpoints) {
    if (ep.id.empty()) return invalid_argument("endpoint with empty id");
    if (ep.interface.empty()) {
      return invalid_argument("endpoint '" + ep.id + "' has empty interface");
    }
    if (!ep_ids.insert(ep.id).second) {
      return invalid_argument("duplicate endpoint id '" + ep.id + "'");
    }
    if (nf_ids.contains(ep.id)) {
      return invalid_argument("id '" + ep.id +
                              "' used for both an NF and an endpoint");
    }
    if (ep.vlan.has_value()) {
      if (*ep.vlan == 0 || *ep.vlan > 4094) {
        return invalid_argument("endpoint '" + ep.id + "' has bad VLAN " +
                                std::to_string(*ep.vlan));
      }
      if (!iface_vlans[ep.interface].insert(*ep.vlan).second) {
        return invalid_argument("interface '" + ep.interface +
                                "' classifies VLAN " +
                                std::to_string(*ep.vlan) + " twice");
      }
    } else {
      if (++iface_untagged[ep.interface] > 1) {
        return invalid_argument("interface '" + ep.interface +
                                "' has two untagged endpoints");
      }
    }
  }

  std::set<std::string> rule_ids;
  std::set<std::string> referenced;
  for (const Rule& rule : graph.rules) {
    if (rule.id.empty()) return invalid_argument("rule with empty id");
    if (!rule_ids.insert(rule.id).second) {
      return invalid_argument("duplicate rule id '" + rule.id + "'");
    }
    NNFV_RETURN_IF_ERROR(check_ref(graph, rule.match.port_in, rule.id));
    NNFV_RETURN_IF_ERROR(check_ref(graph, rule.output, rule.id));
    if (rule.match.port_in == rule.output) {
      return invalid_argument("rule '" + rule.id +
                              "' forwards a port to itself");
    }
    referenced.insert(rule.match.port_in.to_string());
    referenced.insert(rule.output.to_string());
  }

  if (warnings != nullptr) {
    for (const NfNode& nf : graph.nfs) {
      for (std::uint32_t p = 0; p < nf.num_ports; ++p) {
        const std::string ref = "vnf:" + nf.id + ":" + std::to_string(p);
        if (!referenced.contains(ref)) {
          warnings->push_back("NF port " + ref +
                              " is not referenced by any rule");
        }
      }
    }
    for (const Endpoint& ep : graph.endpoints) {
      if (!referenced.contains("endpoint:" + ep.id)) {
        warnings->push_back("endpoint '" + ep.id +
                            "' is not referenced by any rule");
      }
    }
  }
  return Status::ok();
}

}  // namespace nnfv::nffg
