#include "nffg/nffg_json.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace nnfv::nffg {

using util::invalid_argument;
using util::Result;

namespace {

Result<std::uint64_t> require_uint(const json::Value& obj,
                                   std::string_view key,
                                   std::uint64_t max_value) {
  const json::Value* v = obj.get(key);
  if (v == nullptr || !v->is_number()) {
    return invalid_argument("missing numeric field '" + std::string(key) +
                            "'");
  }
  const double d = v->as_number();
  if (d < 0 || d > static_cast<double>(max_value) || d != std::floor(d)) {
    return invalid_argument("field '" + std::string(key) + "' out of range");
  }
  return static_cast<std::uint64_t>(d);
}

Result<std::string> require_string(const json::Value& obj,
                                   std::string_view key) {
  const json::Value* v = obj.get(key);
  if (v == nullptr || !v->is_string()) {
    return invalid_argument("missing string field '" + std::string(key) +
                            "'");
  }
  return v->as_string();
}

/// "10.0.0.0/8" or "10.0.0.1".
util::Status parse_cidr_field(const std::string& text,
                              std::optional<packet::Ipv4Address>& addr,
                              std::uint8_t& prefix) {
  const auto slash = text.find('/');
  const std::string ip_part =
      slash == std::string::npos ? text : text.substr(0, slash);
  auto parsed = packet::Ipv4Address::parse(ip_part);
  if (!parsed.has_value()) {
    return invalid_argument("bad IPv4 address '" + text + "'");
  }
  addr = *parsed;
  prefix = 32;
  if (slash != std::string::npos) {
    std::uint64_t p = 0;
    if (!util::parse_u64(text.substr(slash + 1), p) || p > 32) {
      return invalid_argument("bad prefix in '" + text + "'");
    }
    prefix = static_cast<std::uint8_t>(p);
  }
  return util::Status::ok();
}

Result<NfNode> parse_nf(const json::Value& v) {
  if (!v.is_object()) return invalid_argument("VNF entry must be an object");
  NfNode nf;
  auto id = require_string(v, "id");
  if (!id) return id.status();
  nf.id = id.value();
  auto type = require_string(v, "functional_type");
  if (!type) return type.status();
  nf.functional_type = type.value();
  if (v.get("ports") != nullptr) {
    auto ports = require_uint(v, "ports", 64);
    if (!ports) return ports.status();
    nf.num_ports = static_cast<std::uint32_t>(ports.value());
  }
  if (const json::Value* backend = v.get("backend"); backend != nullptr) {
    if (!backend->is_string()) {
      return invalid_argument("VNF 'backend' must be a string");
    }
    auto kind = virt::backend_from_name(backend->as_string());
    if (!kind.has_value()) {
      return invalid_argument("unknown backend '" + backend->as_string() +
                              "'");
    }
    nf.backend_hint = kind;
  }
  if (const json::Value* config = v.get("config"); config != nullptr) {
    if (!config->is_object()) {
      return invalid_argument("VNF 'config' must be an object");
    }
    for (const auto& [key, value] : config->as_object()) {
      if (!value.is_string()) {
        return invalid_argument("config value for '" + key +
                                "' must be a string");
      }
      nf.config[key] = value.as_string();
    }
  }
  return nf;
}

Result<Endpoint> parse_endpoint(const json::Value& v) {
  if (!v.is_object()) {
    return invalid_argument("end-point entry must be an object");
  }
  Endpoint ep;
  auto id = require_string(v, "id");
  if (!id) return id.status();
  ep.id = id.value();
  auto iface = require_string(v, "interface");
  if (!iface) return iface.status();
  ep.interface = iface.value();
  if (v.get("vlan") != nullptr) {
    auto vlan = require_uint(v, "vlan", 4094);
    if (!vlan) return vlan.status();
    ep.vlan = static_cast<std::uint16_t>(vlan.value());
  }
  return ep;
}

Result<Rule> parse_rule(const json::Value& v) {
  if (!v.is_object()) {
    return invalid_argument("flow-rule entry must be an object");
  }
  Rule rule;
  auto id = require_string(v, "id");
  if (!id) return id.status();
  rule.id = id.value();
  if (v.get("priority") != nullptr) {
    auto prio = require_uint(v, "priority", 65535);
    if (!prio) return prio.status();
    rule.priority = static_cast<std::uint16_t>(prio.value());
  }

  const json::Value* match = v.get("match");
  if (match == nullptr || !match->is_object()) {
    return invalid_argument("flow-rule '" + rule.id + "' missing match");
  }
  auto port_in = require_string(*match, "port_in");
  if (!port_in) return port_in.status();
  auto ref = PortRef::parse(port_in.value());
  if (!ref) return ref.status();
  rule.match.port_in = ref.value();

  if (match->get("eth_type") != nullptr) {
    auto et = require_uint(*match, "eth_type", 0xFFFF);
    if (!et) return et.status();
    rule.match.eth_type = static_cast<std::uint16_t>(et.value());
  }
  if (const json::Value* s = match->get("ip_src"); s != nullptr) {
    if (!s->is_string()) return invalid_argument("ip_src must be a string");
    NNFV_RETURN_IF_ERROR(parse_cidr_field(s->as_string(), rule.match.ip_src,
                                          rule.match.ip_src_prefix));
  }
  if (const json::Value* d = match->get("ip_dst"); d != nullptr) {
    if (!d->is_string()) return invalid_argument("ip_dst must be a string");
    NNFV_RETURN_IF_ERROR(parse_cidr_field(d->as_string(), rule.match.ip_dst,
                                          rule.match.ip_dst_prefix));
  }
  if (match->get("ip_proto") != nullptr) {
    auto proto = require_uint(*match, "ip_proto", 255);
    if (!proto) return proto.status();
    rule.match.ip_proto = static_cast<std::uint8_t>(proto.value());
  }
  if (match->get("tp_src") != nullptr) {
    auto p = require_uint(*match, "tp_src", 65535);
    if (!p) return p.status();
    rule.match.tp_src = static_cast<std::uint16_t>(p.value());
  }
  if (match->get("tp_dst") != nullptr) {
    auto p = require_uint(*match, "tp_dst", 65535);
    if (!p) return p.status();
    rule.match.tp_dst = static_cast<std::uint16_t>(p.value());
  }

  const json::Value* action = v.get("action");
  if (action == nullptr || !action->is_object()) {
    return invalid_argument("flow-rule '" + rule.id + "' missing action");
  }
  auto output = require_string(*action, "output");
  if (!output) return output.status();
  auto out_ref = PortRef::parse(output.value());
  if (!out_ref) return out_ref.status();
  rule.output = out_ref.value();
  return rule;
}

}  // namespace

Result<NfFg> from_json(const json::Value& doc) {
  const json::Value* fg = doc.get("forwarding-graph");
  if (fg == nullptr || !fg->is_object()) {
    return invalid_argument("document must contain 'forwarding-graph'");
  }
  NfFg graph;
  auto id = require_string(*fg, "id");
  if (!id) return id.status();
  graph.id = id.value();
  graph.name = fg->get_string("name");

  if (const json::Value* vnfs = fg->get("VNFs"); vnfs != nullptr) {
    if (!vnfs->is_array()) return invalid_argument("'VNFs' must be an array");
    for (const json::Value& v : vnfs->as_array()) {
      auto nf = parse_nf(v);
      if (!nf) return nf.status();
      graph.nfs.push_back(std::move(nf.value()));
    }
  }
  if (const json::Value* eps = fg->get("end-points"); eps != nullptr) {
    if (!eps->is_array()) {
      return invalid_argument("'end-points' must be an array");
    }
    for (const json::Value& v : eps->as_array()) {
      auto ep = parse_endpoint(v);
      if (!ep) return ep.status();
      graph.endpoints.push_back(std::move(ep.value()));
    }
  }
  if (const json::Value* rules = fg->get("flow-rules"); rules != nullptr) {
    if (!rules->is_array()) {
      return invalid_argument("'flow-rules' must be an array");
    }
    for (const json::Value& v : rules->as_array()) {
      auto rule = parse_rule(v);
      if (!rule) return rule.status();
      graph.rules.push_back(std::move(rule.value()));
    }
  }
  return graph;
}

Result<NfFg> from_json_text(std::string_view text) {
  auto doc = json::parse(text);
  if (!doc) return doc.status();
  return from_json(doc.value());
}

json::Value to_json(const NfFg& graph) {
  json::Object fg;
  fg["id"] = graph.id;
  if (!graph.name.empty()) fg["name"] = graph.name;

  json::Array vnfs;
  for (const NfNode& nf : graph.nfs) {
    json::Object v;
    v["id"] = nf.id;
    v["functional_type"] = nf.functional_type;
    v["ports"] = static_cast<double>(nf.num_ports);
    if (nf.backend_hint.has_value()) {
      v["backend"] = std::string(virt::backend_name(*nf.backend_hint));
    }
    if (!nf.config.empty()) {
      json::Object config;
      for (const auto& [key, value] : nf.config) config[key] = value;
      v["config"] = std::move(config);
    }
    vnfs.push_back(std::move(v));
  }
  fg["VNFs"] = std::move(vnfs);

  json::Array eps;
  for (const Endpoint& ep : graph.endpoints) {
    json::Object v;
    v["id"] = ep.id;
    v["interface"] = ep.interface;
    if (ep.vlan.has_value()) v["vlan"] = static_cast<double>(*ep.vlan);
    eps.push_back(std::move(v));
  }
  fg["end-points"] = std::move(eps);

  json::Array rules;
  for (const Rule& rule : graph.rules) {
    json::Object v;
    v["id"] = rule.id;
    v["priority"] = static_cast<double>(rule.priority);
    json::Object match;
    match["port_in"] = rule.match.port_in.to_string();
    if (rule.match.eth_type.has_value()) {
      match["eth_type"] = static_cast<double>(*rule.match.eth_type);
    }
    if (rule.match.ip_src.has_value()) {
      match["ip_src"] = rule.match.ip_src->to_string() + "/" +
                        std::to_string(rule.match.ip_src_prefix);
    }
    if (rule.match.ip_dst.has_value()) {
      match["ip_dst"] = rule.match.ip_dst->to_string() + "/" +
                        std::to_string(rule.match.ip_dst_prefix);
    }
    if (rule.match.ip_proto.has_value()) {
      match["ip_proto"] = static_cast<double>(*rule.match.ip_proto);
    }
    if (rule.match.tp_src.has_value()) {
      match["tp_src"] = static_cast<double>(*rule.match.tp_src);
    }
    if (rule.match.tp_dst.has_value()) {
      match["tp_dst"] = static_cast<double>(*rule.match.tp_dst);
    }
    v["match"] = std::move(match);
    json::Object action;
    action["output"] = rule.output.to_string();
    v["action"] = std::move(action);
    rules.push_back(std::move(v));
  }
  fg["flow-rules"] = std::move(rules);

  json::Object doc;
  doc["forwarding-graph"] = std::move(fg);
  return doc;
}

}  // namespace nnfv::nffg
