#include "nffg/nffg.hpp"

#include "util/strings.hpp"

namespace nnfv::nffg {

std::string PortRef::to_string() const {
  if (kind == Kind::kEndpoint) return "endpoint:" + id;
  return "vnf:" + id + ":" + std::to_string(port);
}

util::Result<PortRef> PortRef::parse(const std::string& text) {
  const auto parts = util::split(text, ':');
  if (parts.size() == 2 && parts[0] == "endpoint") {
    if (parts[1].empty()) {
      return util::invalid_argument("empty endpoint id in '" + text + "'");
    }
    PortRef ref;
    ref.kind = Kind::kEndpoint;
    ref.id = parts[1];
    return ref;
  }
  if (parts.size() == 3 && parts[0] == "vnf") {
    std::uint64_t port = 0;
    if (parts[1].empty() || !util::parse_u64(parts[2], port) ||
        port > 0xFFFF) {
      return util::invalid_argument("bad NF port ref '" + text + "'");
    }
    PortRef ref;
    ref.kind = Kind::kNf;
    ref.id = parts[1];
    ref.port = static_cast<std::uint32_t>(port);
    return ref;
  }
  return util::invalid_argument(
      "port ref must be 'vnf:<id>:<port>' or 'endpoint:<id>': '" + text +
      "'");
}

const NfNode* NfFg::find_nf(const std::string& nf_id) const {
  for (const NfNode& nf : nfs) {
    if (nf.id == nf_id) return &nf;
  }
  return nullptr;
}

const Endpoint* NfFg::find_endpoint(const std::string& ep_id) const {
  for (const Endpoint& ep : endpoints) {
    if (ep.id == ep_id) return &ep;
  }
  return nullptr;
}

NfNode& NfFg::add_nf(std::string nf_id, std::string functional_type,
                     std::uint32_t ports) {
  NfNode node;
  node.id = std::move(nf_id);
  node.functional_type = std::move(functional_type);
  node.num_ports = ports;
  nfs.push_back(std::move(node));
  return nfs.back();
}

Endpoint& NfFg::add_endpoint(std::string ep_id, std::string interface,
                             std::optional<std::uint16_t> vlan) {
  Endpoint ep;
  ep.id = std::move(ep_id);
  ep.interface = std::move(interface);
  ep.vlan = vlan;
  endpoints.push_back(std::move(ep));
  return endpoints.back();
}

Rule& NfFg::connect(const std::string& rule_id, PortRef from, PortRef to,
                    std::uint16_t priority) {
  Rule rule;
  rule.id = rule_id;
  rule.priority = priority;
  rule.match.port_in = std::move(from);
  rule.output = std::move(to);
  rules.push_back(std::move(rule));
  return rules.back();
}

PortRef nf_port(std::string nf_id, std::uint32_t port) {
  PortRef ref;
  ref.kind = PortRef::Kind::kNf;
  ref.id = std::move(nf_id);
  ref.port = port;
  return ref;
}

PortRef endpoint_ref(std::string ep_id) {
  PortRef ref;
  ref.kind = PortRef::Kind::kEndpoint;
  ref.id = std::move(ep_id);
  return ref;
}

}  // namespace nnfv::nffg
