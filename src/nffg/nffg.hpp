// Network Functions Forwarding Graph (NF-FG): the service description the
// local orchestrator receives (paper Figure 1, top). The object model
// follows the un-orchestrator's NF-FG: a set of NF nodes, a set of
// end-points anchoring the graph to node interfaces/VLANs, and "big-switch"
// flow rules connecting NF ports and end-points.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nnf/network_function.hpp"
#include "packet/headers.hpp"
#include "util/status.hpp"
#include "virt/backend.hpp"

namespace nnfv::nffg {

/// Reference to a traffic attachment inside a graph: either an NF port
/// ("vnf:<nf-id>:<port>") or an end-point ("endpoint:<ep-id>").
struct PortRef {
  enum class Kind { kNf, kEndpoint };
  Kind kind = Kind::kEndpoint;
  std::string id;            ///< NF id or endpoint id
  std::uint32_t port = 0;    ///< NF port index (kNf only)

  [[nodiscard]] std::string to_string() const;
  static util::Result<PortRef> parse(const std::string& text);

  bool operator==(const PortRef&) const = default;
};

/// One network function requested by the graph.
struct NfNode {
  std::string id;               ///< unique within the graph
  std::string functional_type;  ///< "firewall", "nat", "ipsec", ...
  std::uint32_t num_ports = 2;
  nnf::NfConfig config;         ///< initial configuration
  /// Optional placement constraint; normally the scheduler decides.
  std::optional<virt::BackendKind> backend_hint;
};

/// A graph attachment to the node: a physical interface, optionally a VLAN
/// sub-interface (LSI-0 classifies on it).
struct Endpoint {
  std::string id;
  std::string interface;               ///< node port, e.g. "eth0"
  std::optional<std::uint16_t> vlan;   ///< classify tagged traffic
};

/// Packet filter of a flow rule (all fields optional = match-any).
struct RuleMatch {
  PortRef port_in;  ///< required: where the traffic comes from
  std::optional<std::uint16_t> eth_type;
  std::optional<packet::Ipv4Address> ip_src;
  std::uint8_t ip_src_prefix = 32;
  std::optional<packet::Ipv4Address> ip_dst;
  std::uint8_t ip_dst_prefix = 32;
  std::optional<std::uint8_t> ip_proto;
  std::optional<std::uint16_t> tp_src;
  std::optional<std::uint16_t> tp_dst;
};

struct Rule {
  std::string id;
  std::uint16_t priority = 1;
  RuleMatch match;
  PortRef output;  ///< single output (un-orchestrator style)
};

struct NfFg {
  std::string id;
  std::string name;
  std::vector<NfNode> nfs;
  std::vector<Endpoint> endpoints;
  std::vector<Rule> rules;

  [[nodiscard]] const NfNode* find_nf(const std::string& nf_id) const;
  [[nodiscard]] const Endpoint* find_endpoint(const std::string& ep_id) const;

  /// Convenience builder helpers used by examples/tests.
  NfNode& add_nf(std::string nf_id, std::string functional_type,
                 std::uint32_t ports = 2);
  Endpoint& add_endpoint(std::string ep_id, std::string interface,
                         std::optional<std::uint16_t> vlan = std::nullopt);
  Rule& connect(const std::string& rule_id, PortRef from, PortRef to,
                std::uint16_t priority = 1);
};

/// Shorthand constructors for PortRef.
PortRef nf_port(std::string nf_id, std::uint32_t port);
PortRef endpoint_ref(std::string ep_id);

}  // namespace nnfv::nffg
