// HMAC (RFC 2104) over any hash with the Sha256-style interface.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace nnfv::crypto {

/// Generic HMAC. H must expose kDigestSize, kBlockSize, reset/update/final.
template <typename H>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;

  explicit Hmac(std::span<const std::uint8_t> key) {
    std::array<std::uint8_t, H::kBlockSize> k{};
    if (key.size() > H::kBlockSize) {
      H h;
      h.update(key);
      auto d = h.final();
      std::copy(d.begin(), d.end(), k.begin());
    } else {
      std::copy(key.begin(), key.end(), k.begin());
    }
    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      ipad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
      opad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    reset();
  }

  void reset() {
    inner_.reset();
    inner_.update({ipad_.data(), ipad_.size()});
  }

  void update(std::span<const std::uint8_t> data) { inner_.update(data); }

  std::array<std::uint8_t, kDigestSize> final() {
    auto inner_digest = inner_.final();
    H outer;
    outer.update({opad_.data(), opad_.size()});
    outer.update({inner_digest.data(), inner_digest.size()});
    return outer.final();
  }

  /// One-shot MAC.
  static std::array<std::uint8_t, kDigestSize> mac(
      std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
    Hmac h(key);
    h.update(data);
    return h.final();
  }

 private:
  std::array<std::uint8_t, H::kBlockSize> ipad_{};
  std::array<std::uint8_t, H::kBlockSize> opad_{};
  H inner_;
};

using HmacSha256 = Hmac<Sha256>;
using HmacSha1 = Hmac<Sha1>;

/// Constant-time comparison for MAC verification (no early exit).
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace nnfv::crypto
