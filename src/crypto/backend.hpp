// Pluggable crypto backends for the datapath hot loops (AES block ops,
// CBC/CTR bulk work, SHA-256 compression).
//
// Every implementation is compiled unconditionally; which one runs is a
// pure *selection*, made once per process from a CPUID probe
// (util::cpu_features()) plus the NNFV_CRYPTO_BACKEND override. All
// backends are bit-identical — the FIPS-197/CAVP/SP800-38A vector tests
// and a cross-backend identity test pin this — so selection is only ever a
// performance choice, never a correctness one.
//
// Backends:
//   "portable"   32-bit T-table AES + 8-wide unrolled SHA-256 (the PR 1
//                fast path). Runs everywhere; the auto fallback.
//   "aesni"      AES-NI block ops (+ SHA-NI compression when the CPU has
//                it). Selected automatically when CPUID allows.
//   "vaes"       VAES + VPCLMULQDQ wide GCM kernels (2 blocks per YMM
//                register); everything non-GCM delegates to aesni.
//                Preferred over aesni when CPUID allows.
//   "reference"  Byte-wise FIPS-197 textbook AES + rolled SHA-256. Slow,
//                obviously-correct oracle for differential tests; never
//                auto-selected.
//
// Override: NNFV_CRYPTO_BACKEND=portable|aesni|vaes|reference|auto. An
// unknown or unusable request (e.g. vaes on a CPU without it) logs a
// warning and falls back to AUTO selection rather than crashing — which
// still means portable on a CPU without AES-NI, so a forced-portable CI
// job can run the same binaries on any runner.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace nnfv::crypto {

class Aes;
class CryptoBackend;

/// Precomputed GHASH key material (the AES-GCM universal-hash subkey).
/// `h` is the raw subkey H = AES_K(0^128), filled by the caller;
/// `table` is backend-owned precomputation derived from it by
/// ghash_init() — the portable backend stores a 16-entry Shoup 4-bit
/// multiplication table (exactly 256 bytes), the PCLMUL/VAES paths the
/// powers H^1..H^8 (128 bytes, widened from H^1..H^4 for the 8-block
/// aggregated reduction; 32-byte aligned so the VAES kernels can load
/// power pairs as whole YMM registers). `owner` records which backend
/// filled the table: a GcmContext re-inits when the active backend
/// changes (tests flip backends with ScopedBackendOverride), so the blob
/// layout is always the consumer's own.
///
/// `owner` is atomic because datapath workers sharing one SA may race to
/// fill the table on first use: ghash_init() implementations write the
/// table first and release-store `owner` last, and GcmContext::hkey()
/// acquire-loads it, so a thread that observes the matching owner also
/// observes a fully written table. Switching backends while workers are
/// in flight is not supported — that is a control-plane (quiesced)
/// operation, like every other reconfiguration (docs/datapath.md §6).
struct GhashKey {
  alignas(16) std::uint8_t h[16]{};
  alignas(32) std::uint8_t table[256]{};
  std::atomic<const CryptoBackend*> owner{nullptr};

  GhashKey() = default;
  // Contexts holding a GhashKey are copied/moved at setup time only,
  // before any worker shares them; carry the cached table across.
  GhashKey(const GhashKey& other) { *this = other; }
  GhashKey& operator=(const GhashKey& other) {
    std::memcpy(h, other.h, sizeof h);
    std::memcpy(table, other.table, sizeof table);
    owner.store(other.owner.load(std::memory_order_acquire),
                std::memory_order_release);
    return *this;
  }
};

/// One lane of a multi-buffer GCM pass (gcm_crypt_mb): an independent
/// (counter, payload, GHASH state) stream. All lanes of one call share
/// the AES key and GhashKey — the ESP use case is same-SA packets
/// gathered from a burst — but lengths may be ragged and buffers may
/// alias in == out per lane (in-place, like gcm_crypt).
struct GcmMbLane {
  const std::uint8_t* counter = nullptr;  ///< first 16-byte counter block
  const std::uint8_t* in = nullptr;
  std::uint8_t* out = nullptr;
  std::size_t len = 0;
  std::uint8_t* state = nullptr;  ///< 16-byte GHASH accumulator, updated
  bool encrypt = true;            ///< must be uniform across the call
  /// Optional single GHASH blocks folded around the payload, inside the
  /// same kernel pass: `pre_block` (one zero-padded 16-byte block — the
  /// <= 16-byte AAD of RFC 4106 ESP) is absorbed into `state` before the
  /// first ciphertext block, `post_block` (the SP 800-38D lengths block)
  /// after the zero-padded tail. Folding them here instead of via two
  /// extra per-lane ghash() round trips is what keeps the per-packet
  /// overhead of an 8-lane batch below one packet's worth. nullptr skips
  /// either fold (callers with multi-block AAD absorb it into `state`
  /// beforehand).
  const std::uint8_t* pre_block = nullptr;
  const std::uint8_t* post_block = nullptr;
};

class CryptoBackend {
 public:
  /// Lane-count ceiling for one gcm_crypt_mb call: 8 keeps one AES block
  /// per lane in flight, exactly the depth the stitched single-buffer
  /// kernel pipelines, without spilling lane state off the register file.
  static constexpr std::size_t kMaxMbLanes = 8;

  virtual ~CryptoBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the executing CPU can run this backend (checked once at
  /// selection; implementations must not be called when false).
  [[nodiscard]] virtual bool usable() const = 0;

  /// ECB over `nblocks` 16-byte blocks (keystream generation, IV derive).
  virtual void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                                  std::uint8_t* out,
                                  std::size_t nblocks) const = 0;
  virtual void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                                  std::uint8_t* out,
                                  std::size_t nblocks) const = 0;

  /// Raw CBC (no padding) over `len` bytes; len % 16 == 0, `iv` 16 bytes.
  /// in == out (in-place) is allowed.
  virtual void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                           const std::uint8_t* in, std::uint8_t* out,
                           std::size_t len) const = 0;
  virtual void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                           const std::uint8_t* in, std::uint8_t* out,
                           std::size_t len) const = 0;

  /// SHA-256 compression of `nblocks` consecutive 64-byte blocks into
  /// `state` (FIPS 180-4 working variables a..h).
  virtual void sha256_compress(std::uint32_t state[8],
                               const std::uint8_t* blocks,
                               std::size_t nblocks) const = 0;

  /// GCM-style CTR keystream XOR (encrypt == decrypt). `counter` is the
  /// first 16-byte counter block (for GCM: inc32(J0)); per block only the
  /// low (big-endian) 32 bits increment, wrapping — SP 800-38D inc32.
  /// Any `len` is allowed (final partial block uses a truncated
  /// keystream); in == out is allowed. The AES-NI path keeps 8 counter
  /// blocks in flight.
  virtual void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                           const std::uint8_t* in, std::uint8_t* out,
                           std::size_t len) const = 0;

  /// Fused GCM bulk pass — the stitched CTR+GHASH kernel. CTR-crypts
  /// `len` bytes of `in` into `out` starting at `counter` (same SP
  /// 800-38D inc32 semantics as aes_ctr_xor; in == out allowed) while
  /// GHASH-accumulating the *ciphertext* side (`out` when `encrypt`,
  /// `in` otherwise) into `state`, zero-padding the final partial block
  /// exactly like GHASH over C in SP 800-38D. `key` must have been
  /// filled by *this* backend's ghash_init.
  ///
  /// The base implementation is the split two-pass (aes_ctr_xor, then
  /// ghash), ordered so in-place operation stays correct in both
  /// directions; the reference backend keeps it on purpose as the
  /// independent ground truth for the fused kernels. portable fuses the
  /// T-table CTR with the Shoup-table GHASH in one loop; aesni
  /// software-pipelines 8 counter blocks in flight against the 4-block
  /// aggregated PCLMUL reduction (hash chunk i while chunk i+1's AESENC
  /// chains run).
  virtual void gcm_crypt(const Aes& aes, const GhashKey& key,
                         const std::uint8_t counter[16],
                         const std::uint8_t* in, std::uint8_t* out,
                         std::size_t len, std::uint8_t state[16],
                         bool encrypt) const;

  /// Multi-buffer fused GCM: up to kMaxMbLanes independent lanes pushed
  /// through one interleaved CTR+GHASH pass, so short payloads (the
  /// 64–256 B IMIX majority) amortise the per-packet AES pipeline
  /// ramp-up across the batch instead of paying it alone. Ragged lane
  /// lengths are allowed; each lane's `state` accumulates GHASH over its
  /// own ciphertext exactly as gcm_crypt would.
  ///
  /// All lanes must agree on the direction: mixed-direction batches are
  /// rejected (returns false, no lane touched) — an encrypting lane
  /// hashes bytes it writes, a decrypting lane hashes bytes it is about
  /// to overwrite, and the interleaved kernel must know which before it
  /// schedules anything. nlanes == 0 and nlanes > kMaxMbLanes are
  /// rejected the same way.
  ///
  /// The base implementation loops the single-buffer gcm_crypt per lane,
  /// so portable/reference stay bit-identical oracles for the batched
  /// hardware kernels.
  [[nodiscard]] virtual bool gcm_crypt_mb(const Aes& aes,
                                          const GhashKey& key,
                                          GcmMbLane* lanes,
                                          std::size_t nlanes) const;

  /// Fills key.table from key.h (and stamps key.owner = this). Called
  /// once per key — GcmContext caches the result.
  virtual void ghash_init(GhashKey& key) const = 0;

  /// GHASH update over `nblocks` full 16-byte blocks:
  /// state = (state ^ X_i) * H for each block, in the GF(2^128)
  /// convention of SP 800-38D. `key` must have been filled by *this*
  /// backend's ghash_init.
  virtual void ghash(const GhashKey& key, std::uint8_t state[16],
                     const std::uint8_t* blocks,
                     std::size_t nblocks) const = 0;
};

/// The process-wide backend every crypto entry point dispatches through.
/// Selected on first use: NNFV_CRYPTO_BACKEND if set and usable, else
/// "vaes" when the CPU supports it, else "aesni", else "portable".
const CryptoBackend& active_backend();

/// Registry lookup ("portable", "aesni", "vaes", "reference"); nullptr
/// when the name is unknown. The result may be !usable() on this CPU.
const CryptoBackend* backend_by_name(std::string_view name);

/// Every registered backend that is usable on this CPU.
std::vector<const CryptoBackend*> usable_backends();

/// Test/bench hook: forces `backend` as the active one for the object's
/// lifetime, then restores the previous selection. Not thread-safe —
/// single-threaded tests and benches only.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(const CryptoBackend& backend);
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

 private:
  const CryptoBackend* previous_;
};

namespace detail {
// The concrete singletons, exposed so backends can delegate (the AES-NI
// backend borrows the portable SHA-256 compression on CPUs without
// SHA-NI) and so tests can name them without string lookup.
const CryptoBackend& portable_backend();
const CryptoBackend& aesni_backend();
const CryptoBackend& vaes_backend();
const CryptoBackend& reference_backend();
// Portable SHA-256 compression, shared by Sha256 and the backends.
void sha256_compress_portable(std::uint32_t state[8],
                              const std::uint8_t* blocks,
                              std::size_t nblocks);
// Portable Shoup 4-bit-table GHASH, shared so the AES-NI backend can fall
// back to it on CPUs with AES-NI but no PCLMULQDQ (neither sets `owner`;
// the calling backend stamps its own identity).
void ghash_init_4bit(GhashKey& key);
void ghash_4bit(const GhashKey& key, std::uint8_t state[16],
                const std::uint8_t* blocks, std::size_t nblocks);
// FIPS 180-4 SHA-256 round constants, shared by the portable and SHA-NI
// compressions. (The reference oracle keeps its own copy on purpose —
// it must not share code with the backends it checks.)
extern const std::uint32_t kSha256K[64];
}  // namespace detail

}  // namespace nnfv::crypto
