// VAES + VPCLMULQDQ CryptoBackend: the GCM bulk kernels widened to YMM
// registers — two AES blocks per _mm256_aesenc_epi128, two carry-less
// block multiplies per _mm256_clmulepi64_epi128. The stitched gcm_crypt
// runs the same 8-blocks-in-flight / single 8-block aggregated GHASH
// reduction pipeline as the aesni backend, but in half the instructions:
// 4 YMM counter lanes instead of 8 XMM, 4 clmul bundles instead of 8.
//
// Everything that is not a GCM bulk kernel (ECB/CBC, SHA-256, the scalar
// CTR) delegates to the aesni backend — usable() requires AES-NI+PCLMUL
// anyway, and those kernels have no 256-bit upside. The multi-buffer
// lane scheduler gets its own YMM variant (gcm_crypt_mb_vaes): lanes are
// paired two-per-YMM so a full 8-lane batch runs four VAES chains per
// pass instead of eight XMM ones — cross-packet interleaving at half the
// uop cost of the shared 128-bit round-robin.
//
// Like backend_aesni.cpp this TU is compiled with its ISA extensions
// unconditionally on x86 (see CMakeLists) and only *selected* when
// util::cpu_features() reports VAES+VPCLMULQDQ; on other targets or old
// compilers it is a delegating stub with usable() == false.
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/cpuid.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__VAES__) &&     \
    defined(__VPCLMULQDQ__) && defined(__AVX2__) && defined(__AES__) &&    \
    defined(__SSSE3__) && defined(__SSE4_1__) && defined(__PCLMUL__)
#define NNFV_VAES_COMPILED 1
#include <immintrin.h>
#endif

namespace nnfv::crypto {

namespace detail {

namespace {

#ifdef NNFV_VAES_COMPILED

// 128-bit kernel suite shared with backend_aesni.cpp (RoundKeys,
// gf128_reduce, ghash_agg, the multi-buffer scheduler, ...). Compiling it
// here, in a VEX-encoded TU, gives this backend its scalar tails and the
// multi-buffer kernel without duplicating source.
#include "crypto/gcm_clmul_kernels.inc"

/// Round keys broadcast to both YMM halves for _mm256_aesenc_epi128.
struct RoundKeys256 {
  __m256i rk[kMaxRounds + 1];
  int rounds;

  explicit RoundKeys256(const RoundKeys& keys) : rounds(keys.rounds) {
    for (int r = 0; r <= keys.rounds; ++r) {
      rk[r] = _mm256_broadcastsi128_si256(keys.rk[r]);
    }
  }
};

/// Per-128-bit-lane byte reversal (VPSHUFB indexes within each lane).
inline __m256i bswap256(__m256i x) {
  return _mm256_shuffle_epi8(
      x,
      _mm256_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                      0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));
}

/// Two independent 256-bit carry-less products at once, one per YMM
/// half: [hi:lo] of half k = a_k (x) b_k. VPCLMULQDQ multiplies within
/// each 128-bit lane, and the lane-local byte shifts recombine the
/// schoolbook halves exactly like the XMM clmul256 — so XOR-accumulating
/// YMM products and folding the two halves together at the end feeds the
/// same single gf128_reduce.
inline void clmul256x2(__m256i a, __m256i b, __m256i* hi, __m256i* lo) {
  const __m256i t0 = _mm256_clmulepi64_epi128(a, b, 0x00);
  const __m256i t1 = _mm256_clmulepi64_epi128(a, b, 0x10);
  const __m256i t2 = _mm256_clmulepi64_epi128(a, b, 0x01);
  const __m256i t3 = _mm256_clmulepi64_epi128(a, b, 0x11);
  const __m256i mid = _mm256_xor_si256(t1, t2);
  *lo = _mm256_xor_si256(t0, _mm256_slli_si256(mid, 8));
  *hi = _mm256_xor_si256(t3, _mm256_srli_si256(mid, 8));
}

/// H-power pairs for the YMM 8-block fold, in block order: hp[j] pairs
/// blocks (2j, 2j+1) with (H^(8-2j), H^(7-2j)) — low half multiplies the
/// earlier block. table[i] holds H^(i+1) (the shared ghash_init_clmul
/// layout).
struct HPowerPairs {
  __m256i hp[4];

  explicit HPowerPairs(const __m128i* table) {
    hp[0] = _mm256_loadu2_m128i(table + 6, table + 7);  // [H^7 : H^8]
    hp[1] = _mm256_loadu2_m128i(table + 4, table + 5);  // [H^5 : H^6]
    hp[2] = _mm256_loadu2_m128i(table + 2, table + 3);  // [H^3 : H^4]
    hp[3] = _mm256_loadu2_m128i(table + 0, table + 1);  // [H^1 : H^2]
  }
};

/// gf128_reduce for two independent products at once, one per YMM half:
/// every building block (32-bit shifts, the byte-granular VPSLLDQ /
/// VPSRLDQ) operates within each 128-bit lane, so this is the identical
/// shift-left-one + two-phase polynomial fold applied to both halves.
/// Used by the uniform multi-buffer path, where the two halves are two
/// packets' GHASH accumulators rather than one packet's block pair.
inline __m256i gf256x2_reduce(__m256i hi, __m256i lo) {
  __m256i carry_lo = _mm256_srli_epi32(lo, 31);
  __m256i carry_hi = _mm256_srli_epi32(hi, 31);
  lo = _mm256_slli_epi32(lo, 1);
  hi = _mm256_slli_epi32(hi, 1);
  const __m256i cross = _mm256_srli_si256(carry_lo, 12);
  carry_hi = _mm256_slli_si256(carry_hi, 4);
  carry_lo = _mm256_slli_si256(carry_lo, 4);
  lo = _mm256_or_si256(lo, carry_lo);
  hi = _mm256_or_si256(hi, _mm256_or_si256(carry_hi, cross));

  __m256i fold = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_slli_epi32(lo, 31), _mm256_slli_epi32(lo, 30)),
      _mm256_slli_epi32(lo, 25));
  const __m256i fold_hi = _mm256_srli_si256(fold, 4);
  fold = _mm256_slli_si256(fold, 12);
  lo = _mm256_xor_si256(lo, fold);
  const __m256i shifted = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_srli_epi32(lo, 1), _mm256_srli_epi32(lo, 2)),
      _mm256_xor_si256(_mm256_srli_epi32(lo, 7), fold_hi));
  lo = _mm256_xor_si256(lo, shifted);
  return _mm256_xor_si256(hi, lo);
}

/// One aggregated 8-block GHASH fold over 4 YMM ciphertext pairs
/// (byte-reversed, block order: p[j] = [c_{2j+1} : c_{2j}]): 16 YMM
/// clmuls, one horizontal XOR of the halves, one reduction.
inline __m128i ghash8_vaes(__m128i x, const __m256i p[4],
                           const HPowerPairs& hpp) {
  const __m256i x0 = _mm256_set_m128i(_mm_setzero_si128(), x);
  __m256i hi;
  __m256i lo;
  __m256i hip;
  __m256i lop;
  clmul256x2(_mm256_xor_si256(p[0], x0), hpp.hp[0], &hi, &lo);
  for (int j = 1; j < 4; ++j) {
    clmul256x2(p[j], hpp.hp[j], &hip, &lop);
    hi = _mm256_xor_si256(hi, hip);
    lo = _mm256_xor_si256(lo, lop);
  }
  const __m128i hi128 = _mm_xor_si128(_mm256_castsi256_si128(hi),
                                      _mm256_extracti128_si256(hi, 1));
  const __m128i lo128 = _mm_xor_si128(_mm256_castsi256_si128(lo),
                                      _mm256_extracti128_si256(lo, 1));
  return gf128_reduce(hi128, lo128);
}

void ghash_vaes(const GhashKey& key, std::uint8_t state[16],
                const std::uint8_t* blocks, std::size_t nblocks) {
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  __m128i x = bswap128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state)));
  // Single-block fast path: the per-packet AAD and lengths absorptions
  // are one block each, and on those the H-power table walk below is
  // pure overhead — one multiply by H^1 is the whole fold.
  if (nblocks == 1) {
    const __m128i b = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks)));
    x = gf128_mul(_mm_xor_si128(x, b), _mm_load_si128(table + 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(state), bswap128(x));
    return;
  }
  if (nblocks >= 8) {
    const HPowerPairs hpp(table);
    for (; nblocks >= 8; nblocks -= 8, blocks += 128) {
      __m256i p[4];
      for (int j = 0; j < 4; ++j) {
        p[j] = bswap256(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(blocks + 32 * j)));
      }
      x = ghash8_vaes(x, p, hpp);
    }
  }
  if (nblocks > 0) {
    __m128i h[8];
    for (int i = 0; i < 8; ++i) h[i] = _mm_load_si128(table + i);
    __m128i b[8];
    for (std::size_t j = 0; j < nblocks; ++j) {
      b[j] = bswap128(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(blocks + 16 * j)));
    }
    x = ghash_agg(x, b, nblocks, h);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), bswap128(x));
}

// Stitched GCM on YMM: 8 counter blocks in flight as 4 lane pairs, the
// previous 128-byte chunk's GHASH (4 clmul bundles + one reduction)
// interleaved between the VAES rounds. Same pipeline shape and identical
// bits as gcm_crypt_clmul — only the register width changes.
__attribute__((noinline)) void gcm_crypt_vaes(
    const Aes& aes, const GhashKey& key, const std::uint8_t counter[16],
    const std::uint8_t* in, std::uint8_t* out, std::size_t len,
    std::uint8_t state[16], bool encrypt) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  const __m128i kSwap = ctr_swap_mask();
  const __m128i kOne = _mm_set_epi32(1, 0, 0, 0);
  __m128i ctr_le = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)), kSwap);
  __m128i x =
      bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state)));

  std::size_t off = 0;
  if (len >= 128) {
    const RoundKeys256 keys2(keys);
    const HPowerPairs hpp(table);
    const __m256i kSwap2 = _mm256_broadcastsi128_si256(kSwap);
    const __m256i kTwo2 = _mm256_set_epi32(2, 0, 0, 0, 2, 0, 0, 0);
    // Counter pair [ctr+1 : ctr], little-endian lanes; +2 per pair step.
    __m256i ctr01 =
        _mm256_set_m128i(_mm_add_epi32(ctr_le, kOne), ctr_le);
    __m256i pend[4];
    bool have_pend = false;
    for (; off + 128 <= len; off += 128) {
      __m256i b[4];
      for (int j = 0; j < 4; ++j) {
        b[j] = _mm256_xor_si256(_mm256_shuffle_epi8(ctr01, kSwap2),
                                keys2.rk[0]);
        ctr01 = _mm256_add_epi32(ctr01, kTwo2);
      }
      if (have_pend) {
        int r = 1;
        const auto aes_round = [&] {
          if (r < keys2.rounds) {
            for (int j = 0; j < 4; ++j) {
              b[j] = _mm256_aesenc_epi128(b[j], keys2.rk[r]);
            }
            ++r;
          }
        };
        const __m256i x0 = _mm256_set_m128i(_mm_setzero_si128(), x);
        __m256i hi;
        __m256i lo;
        __m256i hip;
        __m256i lop;
        clmul256x2(_mm256_xor_si256(pend[0], x0), hpp.hp[0], &hi, &lo);
        aes_round();
        for (int j = 1; j < 4; ++j) {
          clmul256x2(pend[j], hpp.hp[j], &hip, &lop);
          hi = _mm256_xor_si256(hi, hip);
          lo = _mm256_xor_si256(lo, lop);
          aes_round();
        }
        const __m128i hi128 = _mm_xor_si128(
            _mm256_castsi256_si128(hi), _mm256_extracti128_si256(hi, 1));
        const __m128i lo128 = _mm_xor_si128(
            _mm256_castsi256_si128(lo), _mm256_extracti128_si256(lo, 1));
        aes_round();
        x = gf128_reduce(hi128, lo128);
        while (r < keys2.rounds) aes_round();
      } else {
        for (int r = 1; r < keys2.rounds; ++r) {
          for (int j = 0; j < 4; ++j) {
            b[j] = _mm256_aesenc_epi128(b[j], keys2.rk[r]);
          }
        }
      }
      for (int j = 0; j < 4; ++j) {
        b[j] = _mm256_aesenclast_epi128(b[j], keys2.rk[keys2.rounds]);
        const __m256i data = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + off + 32 * j));
        const __m256i ct = _mm256_xor_si256(b[j], data);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + off + 32 * j),
                            ct);
        pend[j] = bswap256(encrypt ? ct : data);
      }
      have_pend = true;
    }
    if (have_pend) {
      x = ghash8_vaes(x, pend, hpp);
    }
    ctr_le = _mm256_castsi256_si128(ctr01);
  }
  // Tail: remaining full blocks, then the zero-padded partial block —
  // scalar XMM, identical to the aesni tail.
  const __m128i h1 = _mm_load_si128(table + 0);
  for (; off + 16 <= len; off += 16) {
    const __m128i ks = encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap));
    ctr_le = _mm_add_epi32(ctr_le, kOne);
    const __m128i data =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    const __m128i ct = _mm_xor_si128(ks, data);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), ct);
    x = gf128_mul(_mm_xor_si128(bswap128(encrypt ? ct : data), x), h1);
  }
  if (off < len) {
    alignas(16) std::uint8_t keystream[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(keystream),
                    encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap)));
    alignas(16) std::uint8_t ctblock[16] = {};
    for (std::size_t i = 0; off + i < len; ++i) {
      const std::uint8_t d = in[off + i];
      const std::uint8_t c = static_cast<std::uint8_t>(d ^ keystream[i]);
      out[off + i] = c;
      ctblock[i] = encrypt ? c : d;
    }
    x = gf128_mul(
        _mm_xor_si128(
            bswap128(_mm_load_si128(reinterpret_cast<__m128i*>(ctblock))), x),
        h1);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), bswap128(x));
}

// Uniform full batch: 8 lanes of identical length — the shape the ESP
// burst gather and the bench curve produce — with every lane's counter,
// GHASH accumulator and AES block pair held in YMM registers for the
// whole payload. Per two-block step each lane pair runs two VAES chains
// and one Horner fold X = ((X ^ c1)·H^2) ^ (c2·H^1) with a single
// per-pair reduction (gf256x2_reduce handles both packets of the pair at
// once). Nothing round-trips through a lane-context array between
// blocks, which is what the ragged scheduler below pays per pass — and
// the per-call AES/GHASH setup ramp is paid once for the batch instead
// of once per packet.
__attribute__((noinline)) void gcm_crypt_mb_vaes_uniform8(
    const Aes& aes, const GhashKey& key, GcmMbLane* lanes, bool encrypt) {
  constexpr int kPairs = 4;  // kMaxMbLanes / 2
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  const RoundKeys256 keys2(keys);
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  const __m128i h1 = _mm_load_si128(table + 0);
  const __m256i h1b = _mm256_broadcastsi128_si256(h1);
  const __m256i h2b = _mm256_broadcastsi128_si256(_mm_load_si128(table + 1));
  const __m128i kSwap = ctr_swap_mask();
  const __m256i kSwap2 = _mm256_broadcastsi128_si256(kSwap);
  const __m256i kOne2 = _mm256_set_epi32(1, 0, 0, 0, 1, 0, 0, 0);
  const std::size_t len = lanes[0].len;

  const std::uint8_t* in[2 * kPairs];
  std::uint8_t* out[2 * kPairs];
  __m128i xs[2 * kPairs];
  for (int i = 0; i < 2 * kPairs; ++i) {
    in[i] = lanes[i].in;
    out[i] = lanes[i].out;
    xs[i] = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes[i].state)));
    if (lanes[i].pre_block != nullptr) {
      xs[i] = gf128_mul(
          _mm_xor_si128(xs[i], bswap128(_mm_loadu_si128(
                                   reinterpret_cast<const __m128i*>(
                                       lanes[i].pre_block)))),
          h1);
    }
  }
  __m256i c[kPairs];
  __m256i X[kPairs];
  for (int p = 0; p < kPairs; ++p) {
    c[p] = _mm256_shuffle_epi8(
        _mm256_loadu2_m128i(
            reinterpret_cast<const __m128i*>(lanes[2 * p + 1].counter),
            reinterpret_cast<const __m128i*>(lanes[2 * p].counter)),
        kSwap2);
    X[p] = _mm256_set_m128i(xs[2 * p + 1], xs[2 * p]);
  }

  // One CTR pass over all 8 lanes: 4 VAES chains, one block per lane.
  const auto ctr_pass = [&](std::size_t off, __m256i gh[kPairs]) {
    __m256i b[kPairs];
    for (int p = 0; p < kPairs; ++p) {
      b[p] = _mm256_xor_si256(_mm256_shuffle_epi8(c[p], kSwap2),
                              keys2.rk[0]);
      c[p] = _mm256_add_epi32(c[p], kOne2);
    }
    for (int r = 1; r < keys2.rounds; ++r) {
      for (int p = 0; p < kPairs; ++p) {
        b[p] = _mm256_aesenc_epi128(b[p], keys2.rk[r]);
      }
    }
    for (int p = 0; p < kPairs; ++p) {
      b[p] = _mm256_aesenclast_epi128(b[p], keys2.rk[keys2.rounds]);
      const __m256i data = _mm256_loadu2_m128i(
          reinterpret_cast<const __m128i*>(in[2 * p + 1] + off),
          reinterpret_cast<const __m128i*>(in[2 * p] + off));
      const __m256i ct = _mm256_xor_si256(b[p], data);
      _mm256_storeu2_m128i(reinterpret_cast<__m128i*>(out[2 * p + 1] + off),
                           reinterpret_cast<__m128i*>(out[2 * p] + off), ct);
      gh[p] = bswap256(encrypt ? ct : data);
    }
  };

  std::size_t off = 0;
  for (; off + 32 <= len; off += 32) {
    __m256i g1[kPairs];
    __m256i g2[kPairs];
    ctr_pass(off, g1);
    ctr_pass(off + 16, g2);
    for (int p = 0; p < kPairs; ++p) {
      __m256i hi;
      __m256i lo;
      __m256i hip;
      __m256i lop;
      clmul256x2(_mm256_xor_si256(X[p], g1[p]), h2b, &hi, &lo);
      clmul256x2(g2[p], h1b, &hip, &lop);
      X[p] = gf256x2_reduce(_mm256_xor_si256(hi, hip),
                            _mm256_xor_si256(lo, lop));
    }
  }
  if (off + 16 <= len) {
    __m256i g1[kPairs];
    ctr_pass(off, g1);
    for (int p = 0; p < kPairs; ++p) {
      __m256i hi;
      __m256i lo;
      clmul256x2(_mm256_xor_si256(X[p], g1[p]), h1b, &hi, &lo);
      X[p] = gf256x2_reduce(hi, lo);
    }
    off += 16;
  }

  // Scalar epilogue per lane: the zero-padded partial block, the lengths
  // block, and the state writeback. The eight lanes' folds are
  // independent, so the serial gf128_mul chains overlap.
  __m128i cs[2 * kPairs];
  for (int p = 0; p < kPairs; ++p) {
    xs[2 * p] = _mm256_castsi256_si128(X[p]);
    xs[2 * p + 1] = _mm256_extracti128_si256(X[p], 1);
    cs[2 * p] = _mm256_castsi256_si128(c[p]);
    cs[2 * p + 1] = _mm256_extracti128_si256(c[p], 1);
  }
  const std::size_t rem = len - off;
  for (int i = 0; i < 2 * kPairs; ++i) {
    __m128i x = xs[i];
    if (rem > 0) {
      alignas(16) std::uint8_t keystream[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(keystream),
                      encrypt_one(keys, _mm_shuffle_epi8(cs[i], kSwap)));
      alignas(16) std::uint8_t ctblock[16] = {};
      for (std::size_t j = 0; j < rem; ++j) {
        const std::uint8_t d = in[i][off + j];
        const std::uint8_t ct = static_cast<std::uint8_t>(d ^ keystream[j]);
        out[i][off + j] = ct;
        ctblock[j] = encrypt ? ct : d;
      }
      x = gf128_mul(
          _mm_xor_si128(bswap128(_mm_load_si128(
                            reinterpret_cast<__m128i*>(ctblock))),
                        x),
          h1);
    }
    if (lanes[i].post_block != nullptr) {
      x = gf128_mul(
          _mm_xor_si128(x, bswap128(_mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(
                                   lanes[i].post_block)))),
          h1);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes[i].state), bswap128(x));
  }
}

// Multi-buffer GCM on YMM, two stages. Stage one is a cross-lane
// stitched chunk pipeline: every lane's full 128 B chunks flow through
// the same four-chain VAES + aggregated H^1..H^8 interleave as the
// single-buffer kernel, except the GHASH fold retires the *previous*
// chunk no matter which lane produced it. The pipeline therefore never
// drains at a lane boundary — chunk k of lane i hashes while the next
// chunk (possibly lane i+1's first) encrypts — and the AES/GHASH setup
// ramp is paid once per batch instead of once per packet. Stage two
// takes the sub-128 B remainders: live lanes paired two-per-YMM
// register, one block per lane per pass, four _mm256_aesenc_epi128
// chains — half the uops of a shared XMM round-robin — with each lane
// owning its accumulator and H^1..H^8 pend buffer. Once a single live
// lane remains, its tail runs through the stitched single-buffer
// kernel.
void gcm_crypt_mb_vaes(const Aes& aes, const GhashKey& key,
                       GcmMbLane* lanes, std::size_t nlanes) {
  const bool encrypt = lanes[0].encrypt;
  // The register-resident uniform kernel above serves the full-batch
  // equal-length case below one chunk (every lane from one saturated
  // same-size small-packet burst); chunk-sized lanes and ragged batches
  // take the pipeline + scheduler path.
  if (nlanes == CryptoBackend::kMaxMbLanes && lanes[0].len >= 32 &&
      lanes[0].len < 128) {
    bool uniform = true;
    for (std::size_t i = 1; i < nlanes; ++i) {
      if (lanes[i].len != lanes[0].len) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      gcm_crypt_mb_vaes_uniform8(aes, key, lanes, encrypt);
      return;
    }
  }

  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  const RoundKeys256 keys2(keys);
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  const HPowerPairs hpp(table);
  __m128i h[8];
  for (int i = 0; i < 8; ++i) h[i] = _mm_load_si128(table + i);
  const __m128i kSwap = ctr_swap_mask();
  const __m256i kSwap2 = _mm256_broadcastsi128_si256(kSwap);
  const __m128i kOne = _mm_set_epi32(1, 0, 0, 0);
  const __m256i kTwo2 = _mm256_set_epi32(2, 0, 0, 0, 2, 0, 0, 0);

  // Per-lane cursors in byte-reversed register form. Lanes headed for
  // the chunk pipeline absorb their AAD block up front (one mul each;
  // the eight chains are independent, so they overlap). Chunk-less
  // lanes instead seed it into their pend buffer below, where it
  // aggregates for free.
  __m128i xacc[CryptoBackend::kMaxMbLanes];
  __m128i ctr_le[CryptoBackend::kMaxMbLanes];
  std::size_t chunked[CryptoBackend::kMaxMbLanes];
  for (std::size_t i = 0; i < nlanes; ++i) {
    ctr_le[i] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes[i].counter)),
        kSwap);
    xacc[i] = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes[i].state)));
    chunked[i] = lanes[i].len & ~static_cast<std::size_t>(127);
    if (chunked[i] != 0 && lanes[i].pre_block != nullptr) {
      xacc[i] = gf128_mul(
          _mm_xor_si128(xacc[i],
                        bswap128(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(
                                lanes[i].pre_block)))),
          h[0]);
    }
  }

  // Stage one: the chunk pipeline. `pend` always holds the previous
  // chunk's eight GHASH blocks and `xcur` the accumulator of the lane
  // (`prev`) that produced it; the fold interleaves with the current
  // chunk's AES rounds exactly as in the single-buffer kernel.
  int prev = -1;
  __m128i xcur = _mm_setzero_si128();
  __m256i pend[4];
  for (std::size_t i = 0; i < nlanes; ++i) {
    if (chunked[i] == 0) continue;
    const std::uint8_t* in = lanes[i].in;
    std::uint8_t* out = lanes[i].out;
    __m256i ctr01 =
        _mm256_set_m128i(_mm_add_epi32(ctr_le[i], kOne), ctr_le[i]);
    for (std::size_t off = 0; off < chunked[i]; off += 128) {
      __m256i b[4];
      for (int j = 0; j < 4; ++j) {
        b[j] = _mm256_xor_si256(_mm256_shuffle_epi8(ctr01, kSwap2),
                                keys2.rk[0]);
        ctr01 = _mm256_add_epi32(ctr01, kTwo2);
      }
      if (prev >= 0) {
        int r = 1;
        const auto aes_round = [&] {
          if (r < keys2.rounds) {
            for (int j = 0; j < 4; ++j) {
              b[j] = _mm256_aesenc_epi128(b[j], keys2.rk[r]);
            }
            ++r;
          }
        };
        const __m256i x0 = _mm256_set_m128i(_mm_setzero_si128(), xcur);
        __m256i hi;
        __m256i lo;
        __m256i hip;
        __m256i lop;
        clmul256x2(_mm256_xor_si256(pend[0], x0), hpp.hp[0], &hi, &lo);
        aes_round();
        for (int j = 1; j < 4; ++j) {
          clmul256x2(pend[j], hpp.hp[j], &hip, &lop);
          hi = _mm256_xor_si256(hi, hip);
          lo = _mm256_xor_si256(lo, lop);
          aes_round();
        }
        const __m128i hi128 = _mm_xor_si128(
            _mm256_castsi256_si128(hi), _mm256_extracti128_si256(hi, 1));
        const __m128i lo128 = _mm_xor_si128(
            _mm256_castsi256_si128(lo), _mm256_extracti128_si256(lo, 1));
        aes_round();
        xcur = gf128_reduce(hi128, lo128);
        while (r < keys2.rounds) aes_round();
      } else {
        for (int r = 1; r < keys2.rounds; ++r) {
          for (int j = 0; j < 4; ++j) {
            b[j] = _mm256_aesenc_epi128(b[j], keys2.rk[r]);
          }
        }
      }
      for (int j = 0; j < 4; ++j) {
        b[j] = _mm256_aesenclast_epi128(b[j], keys2.rk[keys2.rounds]);
        const __m256i data = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + off + 32 * j));
        const __m256i ct = _mm256_xor_si256(b[j], data);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + off + 32 * j),
                            ct);
        pend[j] = bswap256(encrypt ? ct : data);
      }
      // The fold above retired lane `prev`'s last chunk; `pend` now
      // belongs to lane i, so swap in its accumulator.
      if (prev != static_cast<int>(i)) {
        if (prev >= 0) xacc[prev] = xcur;
        xcur = xacc[i];
        prev = static_cast<int>(i);
      }
    }
    ctr_le[i] = _mm256_castsi256_si128(ctr01);
  }
  if (prev >= 0) xacc[prev] = ghash8_vaes(xcur, pend, hpp);

  struct LaneCtx {
    __m128i ctr_le;
    __m128i x;
    __m128i pend[8];
    std::size_t npend;
    const std::uint8_t* in;
    std::uint8_t* out;
    std::size_t remaining;
  };
  LaneCtx lc[CryptoBackend::kMaxMbLanes];
  for (std::size_t i = 0; i < nlanes; ++i) {
    lc[i].ctr_le = ctr_le[i];
    lc[i].x = xacc[i];
    lc[i].npend = 0;
    // For a lane the pipeline never touched, the AAD block is the first
    // block of its GHASH stream: seeding it as pend[0] folds it into
    // the first aggregated reduction for free.
    if (chunked[i] == 0 && lanes[i].pre_block != nullptr) {
      lc[i].pend[lc[i].npend++] = bswap128(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lanes[i].pre_block)));
    }
    lc[i].in = lanes[i].in + chunked[i];
    lc[i].out = lanes[i].out + chunked[i];
    lc[i].remaining = lanes[i].len - chunked[i];
  }
  // Fold a lane's full pend buffer: pack the 8 byte-reversed blocks into
  // block-ordered YMM pairs and run the aggregated H^1..H^8 reduction.
  const auto flush8 = [&](LaneCtx& L) {
    __m256i p[4];
    for (int j = 0; j < 4; ++j) {
      p[j] = _mm256_set_m128i(L.pend[2 * j + 1], L.pend[2 * j]);
    }
    L.x = ghash8_vaes(L.x, p, hpp);
    L.npend = 0;
  };

  for (;;) {
    // One scheduling decision per segment: the live-lane set only
    // changes when some lane runs out of full blocks, so run
    // min(remaining / 16) passes against a fixed pairing instead of
    // rescanning per block.
    int act[CryptoBackend::kMaxMbLanes];
    int nact = 0;
    std::size_t passes = 0;
    for (std::size_t i = 0; i < nlanes; ++i) {
      if (lc[i].remaining >= 16) {
        const std::size_t full = lc[i].remaining / 16;
        passes = nact == 0 ? full : (full < passes ? full : passes);
        act[nact++] = static_cast<int>(i);
      }
    }
    if (nact == 0) break;
    if (nact == 1) {
      // Last live lane: hand its whole remainder (partial tail included)
      // to the stitched single-buffer kernel — serial XMM round-robin
      // over one lane would waste the YMM pipeline.
      LaneCtx& L = lc[act[0]];
      if (L.npend > 0) {
        L.x = ghash_agg(L.x, L.pend, L.npend, h);
        L.npend = 0;
      }
      alignas(16) std::uint8_t counter[16];
      alignas(16) std::uint8_t state[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(counter),
                      _mm_shuffle_epi8(L.ctr_le, kSwap));
      _mm_store_si128(reinterpret_cast<__m128i*>(state), bswap128(L.x));
      gcm_crypt_vaes(aes, key, counter, L.in, L.out, L.remaining, state,
                     encrypt);
      L.x = bswap128(_mm_load_si128(reinterpret_cast<__m128i*>(state)));
      L.remaining = 0;
      break;
    }
    const int npair = nact / 2;
    const bool odd = (nact & 1) != 0;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      __m256i b2[CryptoBackend::kMaxMbLanes / 2];
      __m128i b1 = _mm_setzero_si128();
      for (int p = 0; p < npair; ++p) {
        LaneCtx& A = lc[act[2 * p]];
        LaneCtx& B = lc[act[2 * p + 1]];
        b2[p] = _mm256_xor_si256(
            _mm256_shuffle_epi8(_mm256_set_m128i(B.ctr_le, A.ctr_le),
                                kSwap2),
            keys2.rk[0]);
        A.ctr_le = _mm_add_epi32(A.ctr_le, kOne);
        B.ctr_le = _mm_add_epi32(B.ctr_le, kOne);
      }
      if (odd) {
        LaneCtx& A = lc[act[nact - 1]];
        b1 = _mm_xor_si128(_mm_shuffle_epi8(A.ctr_le, kSwap), keys.rk[0]);
        A.ctr_le = _mm_add_epi32(A.ctr_le, kOne);
      }
      for (int r = 1; r < keys2.rounds; ++r) {
        for (int p = 0; p < npair; ++p) {
          b2[p] = _mm256_aesenc_epi128(b2[p], keys2.rk[r]);
        }
        if (odd) b1 = _mm_aesenc_si128(b1, keys.rk[r]);
      }
      for (int p = 0; p < npair; ++p) {
        LaneCtx& A = lc[act[2 * p]];
        LaneCtx& B = lc[act[2 * p + 1]];
        const __m256i ks =
            _mm256_aesenclast_epi128(b2[p], keys2.rk[keys2.rounds]);
        const __m256i data = _mm256_loadu2_m128i(
            reinterpret_cast<const __m128i*>(B.in),
            reinterpret_cast<const __m128i*>(A.in));
        const __m256i ct = _mm256_xor_si256(ks, data);
        _mm256_storeu2_m128i(reinterpret_cast<__m128i*>(B.out),
                             reinterpret_cast<__m128i*>(A.out), ct);
        const __m256i gh = bswap256(encrypt ? ct : data);
        A.pend[A.npend++] = _mm256_castsi256_si128(gh);
        B.pend[B.npend++] = _mm256_extracti128_si256(gh, 1);
        if (A.npend == 8) flush8(A);
        if (B.npend == 8) flush8(B);
        A.in += 16;
        A.out += 16;
        A.remaining -= 16;
        B.in += 16;
        B.out += 16;
        B.remaining -= 16;
      }
      if (odd) {
        LaneCtx& A = lc[act[nact - 1]];
        b1 = _mm_aesenclast_si128(b1, keys.rk[keys.rounds]);
        const __m128i data =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(A.in));
        const __m128i ct = _mm_xor_si128(b1, data);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(A.out), ct);
        A.pend[A.npend++] = bswap128(encrypt ? ct : data);
        if (A.npend == 8) flush8(A);
        A.in += 16;
        A.out += 16;
        A.remaining -= 16;
      }
    }
  }

  // Per-lane drain: the zero-padded partial tail joins the pending
  // blocks, then the lengths block; either may fill the 8-block pend
  // buffer, in which case it folds and the rest starts a fresh
  // aggregation. Finally the state is stored back.
  for (std::size_t i = 0; i < nlanes; ++i) {
    LaneCtx& L = lc[i];
    if (L.remaining > 0) {
      alignas(16) std::uint8_t keystream[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(keystream),
                      encrypt_one(keys, _mm_shuffle_epi8(L.ctr_le, kSwap)));
      alignas(16) std::uint8_t ctblock[16] = {};
      for (std::size_t j = 0; j < L.remaining; ++j) {
        const std::uint8_t d = L.in[j];
        const std::uint8_t c = static_cast<std::uint8_t>(d ^ keystream[j]);
        L.out[j] = c;
        ctblock[j] = encrypt ? c : d;
      }
      L.pend[L.npend++] =
          bswap128(_mm_load_si128(reinterpret_cast<__m128i*>(ctblock)));
    }
    if (lanes[i].post_block != nullptr) {
      if (L.npend == 8) {
        L.x = ghash_agg(L.x, L.pend, 8, h);
        L.npend = 0;
      }
      L.pend[L.npend++] = bswap128(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lanes[i].post_block)));
    }
    if (L.npend > 0) {
      L.x = ghash_agg(L.x, L.pend, L.npend, h);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes[i].state),
                     bswap128(L.x));
  }
}

#endif  // NNFV_VAES_COMPILED

class VaesBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "vaes"; }

  [[nodiscard]] bool usable() const override {
#ifdef NNFV_VAES_COMPILED
    const util::CpuFeatures& f = util::cpu_features();
    return f.vaes && f.vpclmul && f.avx2 && f.aesni && f.pclmul &&
           f.ssse3 && f.sse41;
#else
    return false;
#endif
  }

  // Non-GCM primitives have no 256-bit upside; delegate to the aesni
  // backend (usable() guarantees its CPU requirements).
  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aesni_backend().aes_encrypt_blocks(aes, in, out, nblocks);
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aesni_backend().aes_decrypt_blocks(aes, in, out, nblocks);
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    aesni_backend().cbc_encrypt(aes, iv, in, out, len);
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    aesni_backend().cbc_decrypt(aes, iv, in, out, len);
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    aesni_backend().sha256_compress(state, blocks, nblocks);
  }

  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    aesni_backend().aes_ctr_xor(aes, counter, in, out, len);
  }

#ifdef NNFV_VAES_COMPILED
  void ghash_init(GhashKey& key) const override {
    // Same H^1..H^8 blob as the aesni backend (shared ghash_init_clmul),
    // but stamped with this backend's identity: layout compatibility is
    // an implementation detail, the owner protocol is the contract.
    ghash_init_clmul(key);
    key.owner.store(this, std::memory_order_release);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks,
             std::size_t nblocks) const override {
    ghash_vaes(key, state, blocks, nblocks);
  }

  void gcm_crypt(const Aes& aes, const GhashKey& key,
                 const std::uint8_t counter[16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t len, std::uint8_t state[16],
                 bool encrypt) const override {
    gcm_crypt_vaes(aes, key, counter, in, out, len, state, encrypt);
  }

  [[nodiscard]] bool gcm_crypt_mb(const Aes& aes, const GhashKey& key,
                                  GcmMbLane* lanes,
                                  std::size_t nlanes) const override {
    if (nlanes == 0 || nlanes > kMaxMbLanes) return false;
    for (std::size_t i = 1; i < nlanes; ++i) {
      if (lanes[i].encrypt != lanes[0].encrypt) return false;
    }
    gcm_crypt_mb_vaes(aes, key, lanes, nlanes);
    return true;
  }
#else   // !NNFV_VAES_COMPILED: never selected (usable() is false); the
        // bodies satisfy the interface by delegating to aesni (itself a
        // portable-delegating stub on non-x86).
  void ghash_init(GhashKey& key) const override {
    aesni_backend().ghash_init(key);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks,
             std::size_t nblocks) const override {
    aesni_backend().ghash(key, state, blocks, nblocks);
  }
#endif  // NNFV_VAES_COMPILED
};

}  // namespace

const CryptoBackend& vaes_backend() {
  static const VaesBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
