// Reference CryptoBackend: byte-wise FIPS-197 textbook AES (explicit
// SubBytes/ShiftRows/MixColumns over a 4x4 state) and a rolled SHA-256.
// Deliberately the simplest possible transcription of the specs — the
// oracle the other backends are differentially tested against. Never
// auto-selected; reachable via NNFV_CRYPTO_BACKEND=reference or tests.
#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"

namespace nnfv::crypto {

namespace detail {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if ((b & 1) != 0) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

// State is column-major (FIPS 197 §3.4): state[4*c + r] = byte r of word c,
// i.e. exactly the input byte order.

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t bytes[4];
    util::store_be32(bytes, rk[c]);
    for (int r = 0; r < 4; ++r) state[4 * c + r] ^= bytes[r];
  }
}

void shift_rows(std::uint8_t state[16], bool inverse) {
  for (int r = 1; r < 4; ++r) {
    std::uint8_t row[4];
    for (int c = 0; c < 4; ++c) {
      const int src = inverse ? (c - r + 4) % 4 : (c + r) % 4;
      row[c] = state[4 * src + r];
    }
    for (int c = 0; c < 4; ++c) state[4 * c + r] = row[c];
  }
}

void mix_columns(std::uint8_t state[16], bool inverse) {
  static constexpr std::uint8_t kFwd[4] = {2, 3, 1, 1};
  static constexpr std::uint8_t kInv[4] = {0x0e, 0x0b, 0x0d, 0x09};
  const std::uint8_t* m = inverse ? kInv : kFwd;
  for (int c = 0; c < 4; ++c) {
    std::uint8_t col[4];
    std::memcpy(col, state + 4 * c, 4);
    for (int r = 0; r < 4; ++r) {
      state[4 * c + r] = static_cast<std::uint8_t>(
          gf_mul(col[0], m[(4 - r) % 4]) ^ gf_mul(col[1], m[(5 - r) % 4]) ^
          gf_mul(col[2], m[(6 - r) % 4]) ^ gf_mul(col[3], m[(7 - r) % 4]));
    }
  }
}

void encrypt_block_ref(const Aes& aes, const std::uint8_t in[16],
                       std::uint8_t out[16]) {
  const auto rk = aes.enc_round_keys();
  std::uint8_t state[16];
  std::memcpy(state, in, 16);
  add_round_key(state, rk.data());
  for (int round = 1; round < aes.rounds(); ++round) {
    for (auto& byte : state) byte = kSbox[byte];
    shift_rows(state, /*inverse=*/false);
    mix_columns(state, /*inverse=*/false);
    add_round_key(state, rk.data() + 4 * round);
  }
  for (auto& byte : state) byte = kSbox[byte];
  shift_rows(state, /*inverse=*/false);
  add_round_key(state, rk.data() + 4 * aes.rounds());
  std::memcpy(out, state, 16);
}

void decrypt_block_ref(const Aes& aes, const std::uint8_t in[16],
                       std::uint8_t out[16]) {
  // Straight inverse cipher (FIPS 197 §5.3) over the *encryption*
  // schedule in reverse — independent of the equivalent-inverse schedule
  // the optimised backends use, which is the point of an oracle.
  const auto rk = aes.enc_round_keys();
  std::uint8_t state[16];
  std::memcpy(state, in, 16);
  add_round_key(state, rk.data() + 4 * aes.rounds());
  for (int round = aes.rounds() - 1; round >= 1; --round) {
    shift_rows(state, /*inverse=*/true);
    for (auto& byte : state) byte = kInvSbox[byte];
    add_round_key(state, rk.data() + 4 * round);
    mix_columns(state, /*inverse=*/true);
  }
  shift_rows(state, /*inverse=*/true);
  for (auto& byte : state) byte = kInvSbox[byte];
  add_round_key(state, rk.data());
  std::memcpy(out, state, 16);
}

/// SP 800-38D inc32: increment the low 32 bits (big-endian), wrapping.
void inc32_ref(std::uint8_t counter[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

/// Textbook GF(2^128) multiply (SP 800-38D Algorithm 1): z = x * y in the
/// GCM bit convention — bit 0 of z is the MSB of byte 0, and the field
/// polynomial R = 11100001 || 0^120 folds in on every right shift out.
void gf128_mul_ref(const std::uint8_t x[16], const std::uint8_t y[16],
                   std::uint8_t z[16]) {
  std::uint8_t v[16];
  std::memcpy(v, y, 16);
  std::memset(z, 0, 16);
  for (int bit = 0; bit < 128; ++bit) {
    if ((x[bit / 8] >> (7 - bit % 8)) & 1) {
      for (int i = 0; i < 16; ++i) z[i] ^= v[i];
    }
    const bool lsb = (v[15] & 1) != 0;
    for (int i = 15; i > 0; --i) {
      v[i] = static_cast<std::uint8_t>((v[i] >> 1) | (v[i - 1] << 7));
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xE1;
  }
}

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void sha256_compress_ref(std::uint32_t state[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = util::load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t v[8];
  std::memcpy(v, state, sizeof(v));
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(v[4], 6) ^ rotr(v[4], 11) ^ rotr(v[4], 25);
    const std::uint32_t ch = (v[4] & v[5]) ^ (~v[4] & v[6]);
    const std::uint32_t t1 = v[7] + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(v[0], 2) ^ rotr(v[0], 13) ^ rotr(v[0], 22);
    const std::uint32_t maj = (v[0] & v[1]) ^ (v[0] & v[2]) ^ (v[1] & v[2]);
    const std::uint32_t t2 = s0 + maj;
    v[7] = v[6];
    v[6] = v[5];
    v[5] = v[4];
    v[4] = v[3] + t1;
    v[3] = v[2];
    v[2] = v[1];
    v[1] = v[0];
    v[0] = t1 + t2;
  }
  for (int i = 0; i < 8; ++i) state[i] += v[i];
}

class ReferenceBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "reference"; }
  [[nodiscard]] bool usable() const override { return true; }

  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      encrypt_block_ref(aes, in + 16 * i, out + 16 * i);
    }
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      decrypt_block_ref(aes, in + 16 * i, out + 16 * i);
    }
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t block[16];
      for (std::size_t i = 0; i < 16; ++i) {
        block[i] = static_cast<std::uint8_t>(in[off + i] ^ chain[i]);
      }
      encrypt_block_ref(aes, block, out + off);
      std::memcpy(chain, out + off, 16);
    }
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t next_chain[16];
      std::memcpy(next_chain, in + off, 16);
      std::uint8_t block[16];
      decrypt_block_ref(aes, in + off, block);
      for (std::size_t i = 0; i < 16; ++i) {
        out[off + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
      }
      std::memcpy(chain, next_chain, 16);
    }
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      sha256_compress_ref(state, blocks + 64 * i);
    }
  }

  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t keystream[16];
      encrypt_block_ref(aes, ctr, keystream);
      const std::size_t n = len - off < 16 ? len - off : 16;
      for (std::size_t i = 0; i < n; ++i) {
        out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
      }
      inc32_ref(ctr);
    }
  }

  // Deliberately NOT fused: the oracle stays the split byte-wise
  // two-pass (CTR walk, then bit-by-bit GHASH walk) so the stitched
  // kernels in the other backends have an independent ground truth.
  // Spelled out here rather than inheriting the base default so the
  // oracle's shape cannot change under it.
  void gcm_crypt(const Aes& aes, const GhashKey& key,
                 const std::uint8_t counter[16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t len, std::uint8_t state[16],
                 bool encrypt) const override {
    const auto hash_padded = [&](const std::uint8_t* data) {
      const std::size_t full = len / 16;
      ghash(key, state, data, full);
      if (len % 16 != 0) {
        std::uint8_t padded[16] = {};
        std::memcpy(padded, data + 16 * full, len % 16);
        ghash(key, state, padded, 1);
      }
    };
    if (!encrypt) hash_padded(in);  // hash ciphertext before it is overwritten
    aes_ctr_xor(aes, counter, in, out, len);
    if (encrypt) hash_padded(out);
  }

  // The oracle multiplies bit by bit from the raw subkey — no table, which
  // is the point: nothing shared with the precomputations it checks.
  void ghash_init(GhashKey& key) const override {
    key.owner.store(this, std::memory_order_release);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint8_t x[16];
      for (int i = 0; i < 16; ++i) {
        x[i] = static_cast<std::uint8_t>(state[i] ^ blocks[16 * b + i]);
      }
      gf128_mul_ref(x, key.h, state);
    }
  }
};

}  // namespace

const CryptoBackend& reference_backend() {
  static const ReferenceBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
