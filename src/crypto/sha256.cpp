#include "crypto/sha256.hpp"

#include <cstring>

#include "util/byteorder.hpp"

namespace nnfv::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
}

// Compression with the rounds unrolled 8-wide: the working variables are
// renamed per round instead of shuffled (no h=g; g=f; ... register churn),
// which is the main win over the former rolled loop.
#define NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, ki, wi)                  \
  do {                                                                     \
    const std::uint32_t t1 = (h) + (rotr(e, 6) ^ rotr(e, 11) ^             \
                                    rotr(e, 25)) +                         \
                             (((e) & (f)) ^ (~(e) & (g))) + (ki) + (wi);   \
    const std::uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +    \
                             (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));    \
    (d) += t1;                                                             \
    (h) = t1 + t2;                                                         \
  } while (0)

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = util::load_be32(block + 4 * i);
  }
  for (int i = 16; i < 64; i += 2) {
    const std::uint32_t sa0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t sa1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + sa0 + w[i - 7] + sa1;
    const std::uint32_t sb0 =
        rotr(w[i - 14], 7) ^ rotr(w[i - 14], 18) ^ (w[i - 14] >> 3);
    const std::uint32_t sb1 =
        rotr(w[i - 1], 17) ^ rotr(w[i - 1], 19) ^ (w[i - 1] >> 10);
    w[i + 1] = w[i - 15] + sb0 + w[i - 6] + sb1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; i += 8) {
    NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, kK[i + 0], w[i + 0]);
    NNFV_SHA256_ROUND(h, a, b, c, d, e, f, g, kK[i + 1], w[i + 1]);
    NNFV_SHA256_ROUND(g, h, a, b, c, d, e, f, kK[i + 2], w[i + 2]);
    NNFV_SHA256_ROUND(f, g, h, a, b, c, d, e, kK[i + 3], w[i + 3]);
    NNFV_SHA256_ROUND(e, f, g, h, a, b, c, d, kK[i + 4], w[i + 4]);
    NNFV_SHA256_ROUND(d, e, f, g, h, a, b, c, kK[i + 5], w[i + 5]);
    NNFV_SHA256_ROUND(c, d, e, f, g, h, a, b, kK[i + 6], w[i + 6]);
    NNFV_SHA256_ROUND(b, c, d, e, f, g, h, a, kK[i + 7], w[i + 7]);
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

#undef NNFV_SHA256_ROUND

void Sha256::update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::final() {
  const std::uint64_t bits = bit_count_;
  // Append 0x80 then zeros until 8 bytes remain in the block for the length.
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len =
      (rem < 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  update({pad, pad_len});
  std::uint8_t len_be[8];
  util::store_be64(len_be, bits);
  update({len_be, 8});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    util::store_be32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest(
    std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.final();
}

}  // namespace nnfv::crypto
