#include "crypto/sha256.hpp"

#include <cstring>

#include "crypto/backend.hpp"
#include "util/byteorder.hpp"

namespace nnfv::crypto {

// Block compression is dispatched through the active CryptoBackend
// (SHA-NI when the CPU has it, the 8-wide unrolled portable code
// otherwise); this file keeps only the streaming/padding layer. Whole
// blocks in one update() go to the backend as a single multi-block call,
// so per-call virtual dispatch is amortised over the buffer.

void Sha256::reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::process_blocks(const std::uint8_t* blocks, std::size_t nblocks) {
  active_backend().sha256_compress(state_, blocks, nblocks);
}

void Sha256::update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_blocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  const std::size_t whole = (data.size() - offset) / kBlockSize;
  if (whole > 0) {
    process_blocks(data.data() + offset, whole);
    offset += whole * kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::final() {
  const std::uint64_t bits = bit_count_;
  // Append 0x80 then zeros until 8 bytes remain in the block for the length.
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len =
      (rem < 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  update({pad, pad_len});
  std::uint8_t len_be[8];
  util::store_be64(len_be, bits);
  update({len_be, 8});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    util::store_be32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest(
    std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.final();
}

}  // namespace nnfv::crypto
