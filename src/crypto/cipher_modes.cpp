#include "crypto/cipher_modes.hpp"

#include <cstring>

#include "crypto/backend.hpp"

namespace nnfv::crypto {

using util::invalid_argument;
using util::Result;

// All bulk block work dispatches through the active CryptoBackend; this
// file keeps the argument checking and padding policy. Backends are
// bit-identical, so callers never see a behavioural difference.

Result<std::vector<std::uint8_t>> aes_cbc_encrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  const std::size_t pad =
      Aes::kBlockSize - plaintext.size() % Aes::kBlockSize;  // 1..16
  std::vector<std::uint8_t> padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  std::vector<std::uint8_t> out(padded.size());
  active_backend().cbc_encrypt(aes, iv.data(), padded.data(), out.data(),
                               padded.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  active_backend().cbc_decrypt(aes, iv.data(), ciphertext.data(), out.data(),
                               ciphertext.size());
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > Aes::kBlockSize || pad > out.size()) {
    return invalid_argument("bad PKCS#7 padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return invalid_argument("bad PKCS#7 padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_encrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (plaintext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC plaintext must be a multiple of 16");
  }
  std::vector<std::uint8_t> out(plaintext.size());
  active_backend().cbc_encrypt(aes, iv.data(), plaintext.data(), out.data(),
                               plaintext.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  active_backend().cbc_decrypt(aes, iv.data(), ciphertext.data(), out.data(),
                               ciphertext.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_ctr_crypt(
    const Aes& aes, std::span<const std::uint8_t> counter_block,
    std::span<const std::uint8_t> data) {
  if (counter_block.size() != Aes::kBlockSize) {
    return invalid_argument("CTR counter block must be 16 bytes");
  }
  const std::size_t nblocks =
      (data.size() + Aes::kBlockSize - 1) / Aes::kBlockSize;
  std::vector<std::uint8_t> out(data.size());
  if (nblocks == 0) return out;

  // Materialise every counter, then one backend call generates the whole
  // keystream — AES-NI runs the independent blocks 4 deep.
  std::vector<std::uint8_t> keystream(nblocks * Aes::kBlockSize);
  std::uint8_t counter[Aes::kBlockSize];
  std::memcpy(counter, counter_block.data(), Aes::kBlockSize);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::memcpy(keystream.data() + b * Aes::kBlockSize, counter,
                Aes::kBlockSize);
    for (int i = Aes::kBlockSize - 1; i >= 0; --i) {  // big-endian increment
      if (++counter[i] != 0) break;
    }
  }
  active_backend().aes_encrypt_blocks(aes, keystream.data(), keystream.data(),
                                      nblocks);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(data[i] ^ keystream[i]);
  }
  return out;
}

}  // namespace nnfv::crypto
