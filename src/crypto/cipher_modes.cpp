#include "crypto/cipher_modes.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "util/byteorder.hpp"

namespace nnfv::crypto {

using util::invalid_argument;
using util::Result;

// All bulk block work dispatches through the active CryptoBackend; this
// file keeps the argument checking and padding policy. Backends are
// bit-identical, so callers never see a behavioural difference.

Result<std::vector<std::uint8_t>> aes_cbc_encrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  const std::size_t pad =
      Aes::kBlockSize - plaintext.size() % Aes::kBlockSize;  // 1..16
  std::vector<std::uint8_t> padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  std::vector<std::uint8_t> out(padded.size());
  active_backend().cbc_encrypt(aes, iv.data(), padded.data(), out.data(),
                               padded.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  active_backend().cbc_decrypt(aes, iv.data(), ciphertext.data(), out.data(),
                               ciphertext.size());
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > Aes::kBlockSize || pad > out.size()) {
    return invalid_argument("bad PKCS#7 padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return invalid_argument("bad PKCS#7 padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_encrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (plaintext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC plaintext must be a multiple of 16");
  }
  std::vector<std::uint8_t> out(plaintext.size());
  active_backend().cbc_encrypt(aes, iv.data(), plaintext.data(), out.data(),
                               plaintext.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  active_backend().cbc_decrypt(aes, iv.data(), ciphertext.data(), out.data(),
                               ciphertext.size());
  return out;
}

Result<std::vector<std::uint8_t>> aes_ctr_crypt(
    const Aes& aes, std::span<const std::uint8_t> counter_block,
    std::span<const std::uint8_t> data) {
  if (counter_block.size() != Aes::kBlockSize) {
    return invalid_argument("CTR counter block must be 16 bytes");
  }
  const std::size_t nblocks =
      (data.size() + Aes::kBlockSize - 1) / Aes::kBlockSize;
  std::vector<std::uint8_t> out(data.size());
  if (nblocks == 0) return out;

  // Materialise every counter, then one backend call generates the whole
  // keystream — AES-NI runs the independent blocks 4 deep.
  std::vector<std::uint8_t> keystream(nblocks * Aes::kBlockSize);
  std::uint8_t counter[Aes::kBlockSize];
  std::memcpy(counter, counter_block.data(), Aes::kBlockSize);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::memcpy(keystream.data() + b * Aes::kBlockSize, counter,
                Aes::kBlockSize);
    for (int i = Aes::kBlockSize - 1; i >= 0; --i) {  // big-endian increment
      if (++counter[i] != 0) break;
    }
  }
  active_backend().aes_encrypt_blocks(aes, keystream.data(), keystream.data(),
                                      nblocks);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(data[i] ^ keystream[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// AES-GCM
// ---------------------------------------------------------------------------

GcmContext::GcmContext(Aes aes) : aes_(aes) {
  // H = AES_K(0^128). The single-block T-table path is bit-identical
  // across backends, so the raw subkey can be derived here once; the
  // backend-specific table is filled lazily by hkey().
  const std::uint8_t zero[16] = {};
  aes_.encrypt_block(zero, hkey_.h);
}

util::Result<GcmContext> GcmContext::create(
    std::span<const std::uint8_t> key) {
  auto aes = Aes::create(key);
  if (!aes) return aes.status();
  return GcmContext(aes.value());
}

const GhashKey& GcmContext::hkey() const {
  // Datapath workers sealing on a shared SA race to the first use;
  // double-checked locking keeps the table write single-threaded while
  // the hot path stays one acquire load. ghash_init() release-stores
  // `owner` after writing the table, so passing the acquire check means
  // the table is fully visible.
  const CryptoBackend* backend = &active_backend();
  if (hkey_.owner.load(std::memory_order_acquire) != backend) {
    const std::lock_guard<std::mutex> lock(hkey_init_mutex_);
    if (hkey_.owner.load(std::memory_order_relaxed) != backend) {
      backend->ghash_init(hkey_);
    }
  }
  return hkey_;
}

void GcmContext::ghash_absorb_padded(std::span<const std::uint8_t> data,
                                     std::uint8_t state[16]) const {
  const GhashKey& key = hkey();
  const CryptoBackend& backend = active_backend();
  const std::size_t full = data.size() / 16;
  backend.ghash(key, state, data.data(), full);
  if (data.size() % 16 != 0) {
    std::uint8_t padded[16] = {};
    std::memcpy(padded, data.data() + 16 * full, data.size() % 16);
    backend.ghash(key, state, padded, 1);
  }
}

void GcmContext::ghash_lengths(std::size_t aad_len, std::size_t ct_len,
                               std::uint8_t state[16]) const {
  std::uint8_t lengths[16];
  util::store_be64(lengths, static_cast<std::uint64_t>(aad_len) * 8);
  util::store_be64(lengths + 8, static_cast<std::uint64_t>(ct_len) * 8);
  active_backend().ghash(hkey(), state, lengths, 1);
}

util::Status GcmContext::seal(std::span<const std::uint8_t> iv,
                              std::span<const std::uint8_t> aad,
                              std::span<const std::uint8_t> plaintext,
                              std::uint8_t* ciphertext,
                              std::uint8_t tag[kTagSize]) const {
  if (iv.size() != kIvSize) {
    return invalid_argument("GCM IV must be 12 bytes");
  }
  // J0 = IV || 0^31 || 1; the payload keystream starts at inc32(J0).
  std::uint8_t j0[16];
  std::memcpy(j0, iv.data(), kIvSize);
  util::store_be32(j0 + 12, 1);
  std::uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  util::store_be32(counter + 12, 2);

  const CryptoBackend& backend = active_backend();
  std::uint8_t s[16] = {};
  ghash_absorb_padded(aad, s);
  // The fused pass: CTR encryption and the GHASH over the produced
  // ciphertext in one walk over the payload.
  backend.gcm_crypt(aes_, hkey(), counter, plaintext.data(), ciphertext,
                    plaintext.size(), s, /*encrypt=*/true);
  ghash_lengths(aad.size(), plaintext.size(), s);
  // T = E_K(J0) ^ S — one more CTR block, over the raw GHASH output.
  backend.aes_ctr_xor(aes_, j0, s, tag, 16);
  return util::Status::ok();
}

bool GcmContext::open(std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> aad,
                      std::span<const std::uint8_t> ciphertext,
                      std::span<const std::uint8_t> tag,
                      std::uint8_t* plaintext) const {
  if (iv.size() != kIvSize || tag.size() != kTagSize) return false;
  std::uint8_t j0[16];
  std::memcpy(j0, iv.data(), kIvSize);
  util::store_be32(j0 + 12, 1);
  std::uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  util::store_be32(counter + 12, 2);

  const CryptoBackend& backend = active_backend();
  std::uint8_t s[16] = {};
  ghash_absorb_padded(aad, s);
  // Fused decrypt: GHASH over the ciphertext and the CTR pass share one
  // walk, so plaintext exists before the tag verdict — it is wiped, not
  // released, when authentication fails below.
  backend.gcm_crypt(aes_, hkey(), counter, ciphertext.data(), plaintext,
                    ciphertext.size(), s, /*encrypt=*/false);
  ghash_lengths(aad.size(), ciphertext.size(), s);
  std::uint8_t expected[kTagSize];
  backend.aes_ctr_xor(aes_, j0, s, expected, 16);
  if (!constant_time_equal({expected, kTagSize}, tag)) {
    if (!ciphertext.empty()) std::memset(plaintext, 0, ciphertext.size());
    return false;
  }
  return true;
}

util::Status GcmContext::seal_mb(const GcmMbOp* ops, std::size_t nops) const {
  for (std::size_t i = 0; i < nops; ++i) {
    if (ops[i].iv.size() != kIvSize) {
      return invalid_argument("GCM IV must be 12 bytes");
    }
  }
  const CryptoBackend& backend = active_backend();
  const GhashKey& key = hkey();
  constexpr std::size_t kGroup = CryptoBackend::kMaxMbLanes;
  for (std::size_t base = 0; base < nops; base += kGroup) {
    const std::size_t n = std::min(kGroup, nops - base);
    std::uint8_t j0[kGroup][16];
    std::uint8_t counter[kGroup][16];
    std::uint8_t s[kGroup][16];
    std::uint8_t aadblk[kGroup][16];
    std::uint8_t lenblk[kGroup][16];
    GcmMbLane lanes[kGroup];
    for (std::size_t i = 0; i < n; ++i) {
      const GcmMbOp& op = ops[base + i];
      std::memcpy(j0[i], op.iv.data(), kIvSize);
      util::store_be32(j0[i] + 12, 1);
      std::memcpy(counter[i], j0[i], 16);
      util::store_be32(counter[i] + 12, 2);
      std::memset(s[i], 0, 16);
      lanes[i] = GcmMbLane{counter[i], op.input.data(), op.output,
                           op.input.size(), s[i], /*encrypt=*/true};
      // The AAD (<= 16 bytes for RFC 4106 ESP: SPI + sequence number)
      // and the lengths block ride into the batched kernel as the
      // lane's pre/post GHASH blocks — folded inside its aggregated
      // reductions instead of costing two ghash() round trips per lane.
      if (op.aad.size() <= 16) {
        if (!op.aad.empty()) {
          std::memset(aadblk[i], 0, 16);
          std::memcpy(aadblk[i], op.aad.data(), op.aad.size());
          lanes[i].pre_block = aadblk[i];
        }
      } else {
        ghash_absorb_padded(op.aad, s[i]);
      }
      util::store_be64(lenblk[i], static_cast<std::uint64_t>(op.aad.size()) * 8);
      util::store_be64(lenblk[i] + 8,
                       static_cast<std::uint64_t>(op.input.size()) * 8);
      lanes[i].post_block = lenblk[i];
    }
    // All lanes encrypt, n is in range: the batched kernel cannot refuse.
    if (!backend.gcm_crypt_mb(aes_, key, lanes, n)) {
      return util::internal_error("gcm_crypt_mb rejected a uniform batch");
    }
    // One AES call masks every lane's tag: T_i = E_K(J0_i) ^ S_i.
    std::uint8_t ekj0[kGroup][16];
    backend.aes_encrypt_blocks(aes_, j0[0], ekj0[0], n);
    for (std::size_t i = 0; i < n; ++i) {
      const GcmMbOp& op = ops[base + i];
      for (std::size_t b = 0; b < kTagSize; ++b) {
        op.tag[b] = static_cast<std::uint8_t>(ekj0[i][b] ^ s[i][b]);
      }
    }
  }
  return util::Status::ok();
}

bool GcmContext::open_mb(const GcmMbOp* ops, std::size_t nops,
                         bool* ok) const {
  const CryptoBackend& backend = active_backend();
  const GhashKey& key = hkey();
  constexpr std::size_t kGroup = CryptoBackend::kMaxMbLanes;
  bool all_ok = true;
  for (std::size_t base = 0; base < nops; base += kGroup) {
    const std::size_t n = std::min(kGroup, nops - base);
    std::uint8_t j0[kGroup][16];
    std::uint8_t counter[kGroup][16];
    std::uint8_t s[kGroup][16];
    std::uint8_t aadblk[kGroup][16];
    std::uint8_t lenblk[kGroup][16];
    GcmMbLane lanes[kGroup];
    std::size_t nlanes = 0;
    std::size_t lane_op[kGroup];
    for (std::size_t i = 0; i < n; ++i) {
      const GcmMbOp& op = ops[base + i];
      if (op.iv.size() != kIvSize) {
        ok[base + i] = false;
        all_ok = false;
        continue;
      }
      const std::size_t l = nlanes++;
      lane_op[l] = base + i;
      std::memcpy(j0[l], op.iv.data(), kIvSize);
      util::store_be32(j0[l] + 12, 1);
      std::memcpy(counter[l], j0[l], 16);
      util::store_be32(counter[l] + 12, 2);
      std::memset(s[l], 0, 16);
      lanes[l] = GcmMbLane{counter[l], op.input.data(), op.output,
                           op.input.size(), s[l], /*encrypt=*/false};
      // Same pre/post folding as seal_mb: short AAD and the lengths
      // block travel inside the batched kernel pass.
      if (op.aad.size() <= 16) {
        if (!op.aad.empty()) {
          std::memset(aadblk[l], 0, 16);
          std::memcpy(aadblk[l], op.aad.data(), op.aad.size());
          lanes[l].pre_block = aadblk[l];
        }
      } else {
        ghash_absorb_padded(op.aad, s[l]);
      }
      util::store_be64(lenblk[l], static_cast<std::uint64_t>(op.aad.size()) * 8);
      util::store_be64(lenblk[l] + 8,
                       static_cast<std::uint64_t>(op.input.size()) * 8);
      lanes[l].post_block = lenblk[l];
    }
    if (nlanes > 0) {
      if (!backend.gcm_crypt_mb(aes_, key, lanes, nlanes)) {
        return false;
      }
      std::uint8_t ekj0[kGroup][16];
      backend.aes_encrypt_blocks(aes_, j0[0], ekj0[0], nlanes);
      for (std::size_t l = 0; l < nlanes; ++l) {
        const GcmMbOp& op = ops[lane_op[l]];
        std::uint8_t expected[kTagSize];
        for (std::size_t b = 0; b < kTagSize; ++b) {
          expected[b] = static_cast<std::uint8_t>(ekj0[l][b] ^ s[l][b]);
        }
        const bool good = constant_time_equal({expected, kTagSize},
                                              {op.tag, kTagSize});
        ok[lane_op[l]] = good;
        if (!good) {
          if (!op.input.empty()) {
            std::memset(op.output, 0, op.input.size());
          }
          all_ok = false;
        }
      }
    }
  }
  return all_ok;
}

}  // namespace nnfv::crypto
