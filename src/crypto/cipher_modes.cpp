#include "crypto/cipher_modes.hpp"

#include <cstring>

namespace nnfv::crypto {

using util::invalid_argument;
using util::Result;

Result<std::vector<std::uint8_t>> aes_cbc_encrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  const std::size_t pad =
      Aes::kBlockSize - plaintext.size() % Aes::kBlockSize;  // 1..16
  std::vector<std::uint8_t> padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  std::vector<std::uint8_t> out(padded.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < padded.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      block[i] = static_cast<std::uint8_t>(padded[off + i] ^ chain[i]);
    }
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(chain, out.data() + off, Aes::kBlockSize);
  }
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      out[off + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
    }
    std::memcpy(chain, ciphertext.data() + off, Aes::kBlockSize);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > Aes::kBlockSize || pad > out.size()) {
    return invalid_argument("bad PKCS#7 padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return invalid_argument("bad PKCS#7 padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_encrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (plaintext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC plaintext must be a multiple of 16");
  }
  std::vector<std::uint8_t> out(plaintext.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < plaintext.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      block[i] = static_cast<std::uint8_t>(plaintext[off + i] ^ chain[i]);
    }
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(chain, out.data() + off, Aes::kBlockSize);
  }
  return out;
}

Result<std::vector<std::uint8_t>> aes_cbc_decrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    return invalid_argument("CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    return invalid_argument("raw CBC ciphertext must be a positive multiple of 16");
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      out[off + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
    }
    std::memcpy(chain, ciphertext.data() + off, Aes::kBlockSize);
  }
  return out;
}

Result<std::vector<std::uint8_t>> aes_ctr_crypt(
    const Aes& aes, std::span<const std::uint8_t> counter_block,
    std::span<const std::uint8_t> data) {
  if (counter_block.size() != Aes::kBlockSize) {
    return invalid_argument("CTR counter block must be 16 bytes");
  }
  std::uint8_t counter[Aes::kBlockSize];
  std::memcpy(counter, counter_block.data(), Aes::kBlockSize);

  std::vector<std::uint8_t> out(data.size());
  std::uint8_t keystream[Aes::kBlockSize];
  for (std::size_t off = 0; off < data.size(); off += Aes::kBlockSize) {
    aes.encrypt_block(counter, keystream);
    const std::size_t n = std::min(Aes::kBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    // Big-endian increment.
    for (int i = Aes::kBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

}  // namespace nnfv::crypto
