// Block cipher modes used by the ESP datapath: AES-GCM (SP 800-38D, the
// RFC 4106 ESP default), CBC with PKCS#7 padding (RFC 3602 AES-CBC for
// ESP) and CTR (RFC 3686).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace nnfv::crypto {

/// One lane of a GcmContext::seal_mb()/open_mb() batch: an independent
/// (iv, aad, payload) triple under the context's key. `input` is the
/// plaintext for seal_mb and the ciphertext for open_mb; `output` is the
/// same length (in-place allowed). `tag` is written (seal) or verified
/// (open), kTagSize bytes.
struct GcmMbOp {
  std::span<const std::uint8_t> iv;
  std::span<const std::uint8_t> aad;
  std::span<const std::uint8_t> input;
  std::uint8_t* output = nullptr;
  std::uint8_t* tag = nullptr;
};

/// AES-GCM authenticated encryption (SP 800-38D) with a 96-bit IV and a
/// full 128-bit tag — the shape RFC 4106 uses for ESP.
///
/// The expensive key-dependent state is computed once at create():
/// the AES key schedule (inside Aes) and the GHASH subkey H = AES_K(0)
/// with its backend-specific multiplication table (Shoup 4-bit table on
/// the portable backend, H^1..H^4 powers for PCLMUL). seal()/open() are
/// then pure bulk work, which is what lets IpsecEndpoint reuse one
/// context for every packet of a burst. The GHASH table is lazily
/// re-derived if the active backend changes between calls
/// (ScopedBackendOverride in tests), so a context is never tied to the
/// backend that created it.
class GcmContext {
 public:
  static constexpr std::size_t kIvSize = 12;   ///< 96-bit GCM IV
  static constexpr std::size_t kTagSize = 16;  ///< full 128-bit tag

  /// Key must be 16, 24 or 32 bytes.
  static util::Result<GcmContext> create(std::span<const std::uint8_t> key);

  /// Encrypts `plaintext` into `ciphertext` (same length; in-place
  /// allowed) and writes the tag over `aad` + ciphertext. `iv` must be
  /// 12 bytes and unique per key (RFC 4106 uses the ESP sequence
  /// number).
  util::Status seal(std::span<const std::uint8_t> iv,
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> plaintext,
                    std::uint8_t* ciphertext,
                    std::uint8_t tag[kTagSize]) const;

  /// Decrypts and authenticates in one fused pass (same length as
  /// ciphertext; in-place allowed). The tag is still compared in
  /// constant time, and on authentication failure the already-produced
  /// plaintext bytes are wiped to zero before returning false — never
  /// released to the caller.
  [[nodiscard]] bool open(std::span<const std::uint8_t> iv,
                          std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> ciphertext,
                          std::span<const std::uint8_t> tag,
                          std::uint8_t* plaintext) const;

  /// Multi-buffer seal: `nops` independent lanes pushed through the
  /// backend's batched gcm_crypt_mb kernel in groups of up to
  /// CryptoBackend::kMaxMbLanes, with the per-lane E_K(J0) tag masks
  /// batched into one AES call per group. Bit-identical to calling
  /// seal() once per lane — the batching is pure scheduling. Fails (and
  /// touches nothing) if any lane's IV is not kIvSize bytes.
  util::Status seal_mb(const GcmMbOp* ops, std::size_t nops) const;

  /// Multi-buffer open. `ok[i]` receives the per-lane verdict: false on
  /// a malformed lane (bad IV size) or tag mismatch, in which case that
  /// lane's output is wiped to zero, exactly like open(). Lanes fail
  /// independently — one forged packet does not poison its batch.
  /// Returns true iff every lane authenticated.
  [[nodiscard]] bool open_mb(const GcmMbOp* ops, std::size_t nops,
                             bool* ok) const;

 private:
  explicit GcmContext(Aes aes);

  /// The cached GHASH key, re-initialised (thread-safely — workers may
  /// share one context) if the active backend changed.
  const GhashKey& hkey() const;

  /// GHASH-absorbs `data` into `state`, zero-padding the final partial
  /// block (the AAD half of the tag input; the ciphertext half is
  /// absorbed by the fused gcm_crypt pass).
  void ghash_absorb_padded(std::span<const std::uint8_t> data,
                           std::uint8_t state[16]) const;

  /// Absorbs the closing len64(aad) || len64(ciphertext) block.
  void ghash_lengths(std::size_t aad_len, std::size_t ct_len,
                     std::uint8_t state[16]) const;

  Aes aes_;
  mutable GhashKey hkey_;
  /// Serialises the lazy backend-table fill in hkey(); held only on the
  /// miss path (first use per backend), never per packet.
  mutable util::Mutex hkey_init_mutex_;
};

/// CBC-encrypts `plaintext` with PKCS#7 padding. `iv` must be 16 bytes.
/// Output length = plaintext length rounded up to the next multiple of 16
/// (always at least one padding byte).
util::Result<std::vector<std::uint8_t>> aes_cbc_encrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext);

/// Inverse of aes_cbc_encrypt; rejects bad lengths and bad padding.
util::Result<std::vector<std::uint8_t>> aes_cbc_decrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext);

/// CTR keystream XOR (encryption == decryption). `counter_block` is the
/// initial 16-byte counter; incremented big-endian per block.
util::Result<std::vector<std::uint8_t>> aes_ctr_crypt(
    const Aes& aes, std::span<const std::uint8_t> counter_block,
    std::span<const std::uint8_t> data);

/// Raw CBC without padding — the caller guarantees data.size() % 16 == 0.
/// ESP manages its own trailer padding (RFC 4303 §2.4), so the IPsec NF
/// uses these instead of the PKCS#7 variants.
util::Result<std::vector<std::uint8_t>> aes_cbc_encrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext);

util::Result<std::vector<std::uint8_t>> aes_cbc_decrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext);

}  // namespace nnfv::crypto
