// Block cipher modes used by the ESP datapath: CBC with PKCS#7 padding
// (RFC 3602 AES-CBC for ESP) and CTR (RFC 3686).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "util/status.hpp"

namespace nnfv::crypto {

/// CBC-encrypts `plaintext` with PKCS#7 padding. `iv` must be 16 bytes.
/// Output length = plaintext length rounded up to the next multiple of 16
/// (always at least one padding byte).
util::Result<std::vector<std::uint8_t>> aes_cbc_encrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext);

/// Inverse of aes_cbc_encrypt; rejects bad lengths and bad padding.
util::Result<std::vector<std::uint8_t>> aes_cbc_decrypt(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext);

/// CTR keystream XOR (encryption == decryption). `counter_block` is the
/// initial 16-byte counter; incremented big-endian per block.
util::Result<std::vector<std::uint8_t>> aes_ctr_crypt(
    const Aes& aes, std::span<const std::uint8_t> counter_block,
    std::span<const std::uint8_t> data);

/// Raw CBC without padding — the caller guarantees data.size() % 16 == 0.
/// ESP manages its own trailer padding (RFC 4303 §2.4), so the IPsec NF
/// uses these instead of the PKCS#7 variants.
util::Result<std::vector<std::uint8_t>> aes_cbc_encrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext);

util::Result<std::vector<std::uint8_t>> aes_cbc_decrypt_raw(
    const Aes& aes, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext);

}  // namespace nnfv::crypto
