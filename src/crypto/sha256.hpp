// SHA-256 (FIPS 180-4). Backs the ESP integrity algorithm (HMAC-SHA256)
// used by the IPsec native network function.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace nnfv::crypto {

/// Incremental SHA-256. Typical use: update()* then final().
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finishes the hash. The object must be reset() before reuse.
  std::array<std::uint8_t, kDigestSize> final();

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> digest(
      std::span<const std::uint8_t> data);

 private:
  /// Dispatches `nblocks` consecutive 64-byte blocks to the active
  /// CryptoBackend's compression in one call.
  void process_blocks(const std::uint8_t* blocks, std::size_t nblocks);

  std::uint32_t state_[8];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
};

}  // namespace nnfv::crypto
