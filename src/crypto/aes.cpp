#include "crypto/aes.hpp"

#include <cstring>

namespace nnfv::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if ((b & 1) != 0) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

constexpr std::uint32_t rotr8(std::uint32_t w) { return (w >> 8) | (w << 24); }

// Encryption T-tables: Te0[x] packs one S-boxed byte's MixColumns
// contribution, Te1..Te3 are byte rotations of it.
struct EncTables {
  std::uint32_t t0[256]{}, t1[256]{}, t2[256]{}, t3[256]{};
};

constexpr EncTables make_enc_tables() {
  EncTables t;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint32_t w = (static_cast<std::uint32_t>(gf_mul(s, 2)) << 24) |
                            (static_cast<std::uint32_t>(s) << 16) |
                            (static_cast<std::uint32_t>(s) << 8) |
                            static_cast<std::uint32_t>(gf_mul(s, 3));
    t.t0[i] = w;
    t.t1[i] = rotr8(w);
    t.t2[i] = rotr8(rotr8(w));
    t.t3[i] = rotr8(rotr8(rotr8(w)));
  }
  return t;
}

// Decryption T-tables for the equivalent inverse cipher:
// Td0[x] = InvMixColumns contribution of InvSbox[x].
struct DecTables {
  std::uint32_t t0[256]{}, t1[256]{}, t2[256]{}, t3[256]{};
};

constexpr DecTables make_dec_tables() {
  DecTables t;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kInvSbox[i];
    const std::uint32_t w =
        (static_cast<std::uint32_t>(gf_mul(s, 0x0e)) << 24) |
        (static_cast<std::uint32_t>(gf_mul(s, 0x09)) << 16) |
        (static_cast<std::uint32_t>(gf_mul(s, 0x0d)) << 8) |
        static_cast<std::uint32_t>(gf_mul(s, 0x0b));
    t.t0[i] = w;
    t.t1[i] = rotr8(w);
    t.t2[i] = rotr8(rotr8(w));
    t.t3[i] = rotr8(rotr8(rotr8(w)));
  }
  return t;
}

constexpr EncTables kTe = make_enc_tables();
constexpr DecTables kTd = make_dec_tables();

inline std::uint32_t load_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be(std::uint8_t* p, std::uint32_t w) {
  p[0] = static_cast<std::uint8_t>(w >> 24);
  p[1] = static_cast<std::uint8_t>(w >> 16);
  p[2] = static_cast<std::uint8_t>(w >> 8);
  p[3] = static_cast<std::uint8_t>(w);
}

/// InvMixColumns of one word (key-schedule transform for dec_keys_).
inline std::uint32_t inv_mix_word(std::uint32_t w) {
  return kTd.t0[kSbox[(w >> 24) & 0xFF]] ^ kTd.t1[kSbox[(w >> 16) & 0xFF]] ^
         kTd.t2[kSbox[(w >> 8) & 0xFF]] ^ kTd.t3[kSbox[w & 0xFF]];
}

inline std::uint32_t sub_word(std::uint32_t w) {
  return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xFF]) << 24) |
         (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xFF]) << 16) |
         (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xFF]) << 8) |
         static_cast<std::uint32_t>(kSbox[w & 0xFF]);
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

util::Result<Aes> Aes::create(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    return util::invalid_argument("AES key must be 16, 24 or 32 bytes, got " +
                                  std::to_string(key.size()));
  }
  Aes aes;
  aes.expand_key(key);
  return aes;
}

void Aes::expand_key(std::span<const std::uint8_t> key) {
  const int nk = static_cast<int>(key.size() / 4);  // key words
  rounds_ = nk + 6;
  const int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) enc_keys_[i] = load_be(key.data() + 4 * i);
  std::uint32_t rcon = 0x01;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = enc_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (rcon << 24);
      rcon = xtime(static_cast<std::uint8_t>(rcon));
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    enc_keys_[i] = enc_keys_[i - nk] ^ temp;
  }

  // Equivalent inverse cipher schedule: round keys reversed, middle rounds
  // passed through InvMixColumns.
  for (int r = 0; r <= rounds_; ++r) {
    for (int c = 0; c < 4; ++c) {
      std::uint32_t w = enc_keys_[4 * (rounds_ - r) + c];
      if (r != 0 && r != rounds_) w = inv_mix_word(w);
      dec_keys_[4 * r + c] = w;
    }
  }

  // Schedule cache: serialise both schedules to bytes once, here, so ISA
  // backends load round keys directly instead of per bulk call.
  for (int i = 0; i < total_words; ++i) {
    store_be(enc_bytes_.data() + 4 * i, enc_keys_[i]);
    store_be(dec_bytes_.data() + 4 * i, dec_keys_[i]);
  }
}

void Aes::encrypt_block(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const {
  const std::uint32_t* rk = enc_keys_.data();
  std::uint32_t s0 = load_be(in) ^ rk[0];
  std::uint32_t s1 = load_be(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be(in + 12) ^ rk[3];

  for (int round = 1; round < rounds_; ++round) {
    rk += 4;
    const std::uint32_t t0 = kTe.t0[s0 >> 24] ^ kTe.t1[(s1 >> 16) & 0xFF] ^
                             kTe.t2[(s2 >> 8) & 0xFF] ^ kTe.t3[s3 & 0xFF] ^
                             rk[0];
    const std::uint32_t t1 = kTe.t0[s1 >> 24] ^ kTe.t1[(s2 >> 16) & 0xFF] ^
                             kTe.t2[(s3 >> 8) & 0xFF] ^ kTe.t3[s0 & 0xFF] ^
                             rk[1];
    const std::uint32_t t2 = kTe.t0[s2 >> 24] ^ kTe.t1[(s3 >> 16) & 0xFF] ^
                             kTe.t2[(s0 >> 8) & 0xFF] ^ kTe.t3[s1 & 0xFF] ^
                             rk[2];
    const std::uint32_t t3 = kTe.t0[s3 >> 24] ^ kTe.t1[(s0 >> 16) & 0xFF] ^
                             kTe.t2[(s1 >> 8) & 0xFF] ^ kTe.t3[s2 & 0xFF] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  rk += 4;  // final round: SubBytes + ShiftRows + AddRoundKey
  const auto final_word = [&](std::uint32_t a, std::uint32_t b,
                              std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(kSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(b >> 16) & 0xFF]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(c >> 8) & 0xFF]) << 8) |
           static_cast<std::uint32_t>(kSbox[d & 0xFF]);
  };
  store_be(out, final_word(s0, s1, s2, s3) ^ rk[0]);
  store_be(out + 4, final_word(s1, s2, s3, s0) ^ rk[1]);
  store_be(out + 8, final_word(s2, s3, s0, s1) ^ rk[2]);
  store_be(out + 12, final_word(s3, s0, s1, s2) ^ rk[3]);
}

void Aes::decrypt_block(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const {
  const std::uint32_t* rk = dec_keys_.data();
  std::uint32_t s0 = load_be(in) ^ rk[0];
  std::uint32_t s1 = load_be(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be(in + 12) ^ rk[3];

  for (int round = 1; round < rounds_; ++round) {
    rk += 4;
    const std::uint32_t t0 = kTd.t0[s0 >> 24] ^ kTd.t1[(s3 >> 16) & 0xFF] ^
                             kTd.t2[(s2 >> 8) & 0xFF] ^ kTd.t3[s1 & 0xFF] ^
                             rk[0];
    const std::uint32_t t1 = kTd.t0[s1 >> 24] ^ kTd.t1[(s0 >> 16) & 0xFF] ^
                             kTd.t2[(s3 >> 8) & 0xFF] ^ kTd.t3[s2 & 0xFF] ^
                             rk[1];
    const std::uint32_t t2 = kTd.t0[s2 >> 24] ^ kTd.t1[(s1 >> 16) & 0xFF] ^
                             kTd.t2[(s0 >> 8) & 0xFF] ^ kTd.t3[s3 & 0xFF] ^
                             rk[2];
    const std::uint32_t t3 = kTd.t0[s3 >> 24] ^ kTd.t1[(s2 >> 16) & 0xFF] ^
                             kTd.t2[(s1 >> 8) & 0xFF] ^ kTd.t3[s0 & 0xFF] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  rk += 4;  // final round: InvShiftRows + InvSubBytes + AddRoundKey
  const auto final_word = [&](std::uint32_t a, std::uint32_t b,
                              std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(kInvSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kInvSbox[(b >> 16) & 0xFF]) << 16) |
           (static_cast<std::uint32_t>(kInvSbox[(c >> 8) & 0xFF]) << 8) |
           static_cast<std::uint32_t>(kInvSbox[d & 0xFF]);
  };
  store_be(out, final_word(s0, s3, s2, s1) ^ rk[0]);
  store_be(out + 4, final_word(s1, s0, s3, s2) ^ rk[1]);
  store_be(out + 8, final_word(s2, s1, s0, s3) ^ rk[2]);
  store_be(out + 12, final_word(s3, s2, s1, s0) ^ rk[3]);
}

}  // namespace nnfv::crypto
