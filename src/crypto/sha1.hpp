// SHA-1 (FIPS 180-4). Provided for HMAC-SHA1, the historical default ESP
// authenticator (hmac(sha1) in the Linux kernel's IPsec stack).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace nnfv::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> final();

  static std::array<std::uint8_t, kDigestSize> digest(
      std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[5];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
};

}  // namespace nnfv::crypto
