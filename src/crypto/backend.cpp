// Backend registry and the once-per-process selection (CPUID probe +
// NNFV_CRYPTO_BACKEND override). The implementations live in
// backend_portable.cpp / backend_aesni.cpp / backend_reference.cpp.
#include "crypto/backend.hpp"

#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace nnfv::crypto {

// Split two-pass gcm_crypt: the default every backend inherits unless it
// provides a genuinely fused kernel. The pass order flips with the
// direction so in-place buffers survive: decrypt hashes the ciphertext
// *before* the CTR pass overwrites it, encrypt hashes the ciphertext the
// CTR pass just produced.
void CryptoBackend::gcm_crypt(const Aes& aes, const GhashKey& key,
                              const std::uint8_t counter[16],
                              const std::uint8_t* in, std::uint8_t* out,
                              std::size_t len, std::uint8_t state[16],
                              bool encrypt) const {
  const auto hash_padded = [&](const std::uint8_t* data) {
    const std::size_t full = len / 16;
    ghash(key, state, data, full);
    if (len % 16 != 0) {
      std::uint8_t padded[16] = {};
      std::memcpy(padded, data + 16 * full, len % 16);
      ghash(key, state, padded, 1);
    }
  };
  if (!encrypt) hash_padded(in);
  aes_ctr_xor(aes, counter, in, out, len);
  if (encrypt) hash_padded(out);
}

// Default multi-buffer pass: the single-buffer kernel per lane. No
// interleaving, but bit-identical to the batched hardware kernels — so
// portable/reference stay the oracles the differential tests diff the
// aesni/vaes lane schedulers against. The direction check lives here (and
// not only in the hardware kernels) so every backend rejects a mixed
// batch identically.
bool CryptoBackend::gcm_crypt_mb(const Aes& aes, const GhashKey& key,
                                 GcmMbLane* lanes,
                                 std::size_t nlanes) const {
  if (nlanes == 0 || nlanes > kMaxMbLanes) return false;
  for (std::size_t i = 1; i < nlanes; ++i) {
    if (lanes[i].encrypt != lanes[0].encrypt) return false;
  }
  for (std::size_t i = 0; i < nlanes; ++i) {
    if (lanes[i].pre_block != nullptr) {
      ghash(key, lanes[i].state, lanes[i].pre_block, 1);
    }
    gcm_crypt(aes, key, lanes[i].counter, lanes[i].in, lanes[i].out,
              lanes[i].len, lanes[i].state, lanes[i].encrypt);
    if (lanes[i].post_block != nullptr) {
      ghash(key, lanes[i].state, lanes[i].post_block, 1);
    }
  }
  return true;
}

namespace {

struct Registry {
  const CryptoBackend* entries[4];
};

const Registry& registry() {
  static const Registry r{{&detail::portable_backend(),
                           &detail::aesni_backend(),
                           &detail::vaes_backend(),
                           &detail::reference_backend()}};
  return r;
}

const CryptoBackend* select_backend() {
  const char* env = std::getenv("NNFV_CRYPTO_BACKEND");
  const std::string_view want = env == nullptr ? "" : env;
  if (!want.empty() && want != "auto") {
    const CryptoBackend* requested = backend_by_name(want);
    if (requested != nullptr && requested->usable()) {
      NNFV_LOG(kInfo, "crypto")
          << "backend '" << requested->name() << "' (NNFV_CRYPTO_BACKEND)";
      return requested;
    }
    NNFV_LOG(kWarn, "crypto")
        << "NNFV_CRYPTO_BACKEND='" << want
        << "' unknown or unusable on this CPU; falling back to auto";
  }
  const CryptoBackend& vaes = detail::vaes_backend();
  if (vaes.usable()) {
    NNFV_LOG(kInfo, "crypto") << "backend 'vaes' (CPUID)";
    return &vaes;
  }
  const CryptoBackend& aesni = detail::aesni_backend();
  if (aesni.usable()) {
    NNFV_LOG(kInfo, "crypto") << "backend 'aesni' (CPUID)";
    return &aesni;
  }
  NNFV_LOG(kInfo, "crypto") << "backend 'portable'";
  return &detail::portable_backend();
}

// Mutable only through ScopedBackendOverride (tests/benches).
const CryptoBackend*& active_slot() {
  static const CryptoBackend* active = select_backend();
  return active;
}

}  // namespace

const CryptoBackend& active_backend() { return *active_slot(); }

const CryptoBackend* backend_by_name(std::string_view name) {
  for (const CryptoBackend* backend : registry().entries) {
    if (backend->name() == name) return backend;
  }
  return nullptr;
}

std::vector<const CryptoBackend*> usable_backends() {
  std::vector<const CryptoBackend*> out;
  for (const CryptoBackend* backend : registry().entries) {
    if (backend->usable()) out.push_back(backend);
  }
  return out;
}

ScopedBackendOverride::ScopedBackendOverride(const CryptoBackend& backend)
    : previous_(&active_backend()) {
  active_slot() = &backend;
}

ScopedBackendOverride::~ScopedBackendOverride() { active_slot() = previous_; }

}  // namespace nnfv::crypto
