// AES-128/192/256 block cipher (FIPS 197), table-free byte-wise
// implementation. Backs the ESP encryption algorithm (AES-CBC, RFC 3602)
// used by the IPsec native network function.
//
// Performance note: the datapath's *simulated* timing comes from
// virt::CostModel; this implementation favours clarity and testability over
// host wall-clock speed (see bench_crypto for host numbers).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/status.hpp"

namespace nnfv::crypto {

/// AES block cipher with 128/192/256-bit keys.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes.
  static util::Result<Aes> create(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  Aes() = default;
  void expand_key(std::span<const std::uint8_t> key);

  // Max 15 round keys (AES-256) of 16 bytes each.
  std::array<std::uint8_t, 16 * 15> round_keys_{};
  int rounds_ = 0;
};

}  // namespace nnfv::crypto
