// AES-128/192/256 block cipher (FIPS 197), 32-bit T-table implementation.
// Backs the ESP encryption algorithm (AES-CBC, RFC 3602) used by the IPsec
// native network function.
//
// Each round is four table lookups + XORs per column against precomputed
// round-key words (encryption) or InvMixColumns-transformed round-key
// words (the equivalent inverse cipher, decryption) — the classic software
// fast path, several times quicker than the former byte-wise S-box code.
// Correctness is pinned by FIPS-197 / NIST CAVP vectors in test_crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/status.hpp"

namespace nnfv::crypto {

/// AES block cipher with 128/192/256-bit keys.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes.
  static util::Result<Aes> create(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  [[nodiscard]] int rounds() const { return rounds_; }

  /// Expanded schedules for CryptoBackend implementations: 4*(rounds()+1)
  /// big-endian words each. enc is the straight FIPS-197 schedule;
  /// dec is the equivalent-inverse schedule (round keys reversed, middle
  /// rounds through InvMixColumns) — serialised big-endian these are
  /// byte-for-byte the keys AESDEC/AESDECLAST expect.
  [[nodiscard]] std::span<const std::uint32_t> enc_round_keys() const {
    return {enc_keys_.data(), static_cast<std::size_t>(4 * (rounds_ + 1))};
  }
  [[nodiscard]] std::span<const std::uint32_t> dec_round_keys() const {
    return {dec_keys_.data(), static_cast<std::size_t>(4 * (rounds_ + 1))};
  }

  /// Schedule cache: the byte-serialised (big-endian per word) forms of the
  /// two schedules, which is exactly the register layout AESENC/AESDEC
  /// load. Filled once at key expansion and 16-byte aligned, so ISA
  /// backends read round keys with aligned SIMD loads instead of
  /// re-serialising the word schedules on every bulk call. The layout is
  /// ISA-neutral byte order, so the cached bytes are bit-identical no
  /// matter which backend consumes them.
  [[nodiscard]] std::span<const std::uint8_t> enc_schedule_bytes() const {
    return {enc_bytes_.data(), static_cast<std::size_t>(16 * (rounds_ + 1))};
  }
  [[nodiscard]] std::span<const std::uint8_t> dec_schedule_bytes() const {
    return {dec_bytes_.data(), static_cast<std::size_t>(16 * (rounds_ + 1))};
  }

 private:
  Aes() = default;
  void expand_key(std::span<const std::uint8_t> key);

  // Max 15 round keys (AES-256), as big-endian words: enc_keys_ straight
  // from the FIPS-197 schedule, dec_keys_ transformed for the equivalent
  // inverse cipher.
  std::array<std::uint32_t, 4 * 15> enc_keys_{};
  std::array<std::uint32_t, 4 * 15> dec_keys_{};
  // The cached byte-serialised schedules (see enc_schedule_bytes()).
  alignas(16) std::array<std::uint8_t, 16 * 15> enc_bytes_{};
  alignas(16) std::array<std::uint8_t, 16 * 15> dec_bytes_{};
  int rounds_ = 0;
};

}  // namespace nnfv::crypto
