// Portable CryptoBackend: the PR 1 software fast path — 32-bit T-table
// AES (via the Aes block functions) and the 8-wide unrolled SHA-256
// compression. Runs on every CPU; the auto-selection fallback.
#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"

namespace nnfv::crypto {

namespace detail {

const std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// Rounds unrolled 8-wide: working variables are renamed per round instead
// of shuffled (no h=g; g=f; ... register churn).
#define NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, ki, wi)                   \
  do {                                                                      \
    const std::uint32_t t1 = (h) + (rotr(e, 6) ^ rotr(e, 11) ^              \
                                    rotr(e, 25)) +                          \
                             (((e) & (f)) ^ (~(e) & (g))) + (ki) + (wi);    \
    const std::uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +     \
                             (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));     \
    (d) += t1;                                                              \
    (h) = t1 + t2;                                                          \
  } while (0)

void compress_one(std::uint32_t state[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = util::load_be32(block + 4 * i);
  }
  for (int i = 16; i < 64; i += 2) {
    const std::uint32_t sa0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t sa1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + sa0 + w[i - 7] + sa1;
    const std::uint32_t sb0 =
        rotr(w[i - 14], 7) ^ rotr(w[i - 14], 18) ^ (w[i - 14] >> 3);
    const std::uint32_t sb1 =
        rotr(w[i - 1], 17) ^ rotr(w[i - 1], 19) ^ (w[i - 1] >> 10);
    w[i + 1] = w[i - 15] + sb0 + w[i - 6] + sb1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; i += 8) {
    NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, kSha256K[i + 0], w[i + 0]);
    NNFV_SHA256_ROUND(h, a, b, c, d, e, f, g, kSha256K[i + 1], w[i + 1]);
    NNFV_SHA256_ROUND(g, h, a, b, c, d, e, f, kSha256K[i + 2], w[i + 2]);
    NNFV_SHA256_ROUND(f, g, h, a, b, c, d, e, kSha256K[i + 3], w[i + 3]);
    NNFV_SHA256_ROUND(e, f, g, h, a, b, c, d, kSha256K[i + 4], w[i + 4]);
    NNFV_SHA256_ROUND(d, e, f, g, h, a, b, c, kSha256K[i + 5], w[i + 5]);
    NNFV_SHA256_ROUND(c, d, e, f, g, h, a, b, kSha256K[i + 6], w[i + 6]);
    NNFV_SHA256_ROUND(b, c, d, e, f, g, h, a, kSha256K[i + 7], w[i + 7]);
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

#undef NNFV_SHA256_ROUND

class PortableBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "portable"; }
  [[nodiscard]] bool usable() const override { return true; }

  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      aes.encrypt_block(in + 16 * i, out + 16 * i);
    }
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      aes.decrypt_block(in + 16 * i, out + 16 * i);
    }
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t block[16];
      for (std::size_t i = 0; i < 16; ++i) {
        block[i] = static_cast<std::uint8_t>(in[off + i] ^ chain[i]);
      }
      aes.encrypt_block(block, out + off);
      std::memcpy(chain, out + off, 16);
    }
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t next_chain[16];  // survives in-place decryption
      std::memcpy(next_chain, in + off, 16);
      std::uint8_t block[16];
      aes.decrypt_block(in + off, block);
      for (std::size_t i = 0; i < 16; ++i) {
        out[off + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
      }
      std::memcpy(chain, next_chain, 16);
    }
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    sha256_compress_portable(state, blocks, nblocks);
  }

  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter, 16);
    std::uint32_t block_ctr = util::load_be32(ctr + 12);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t keystream[16];
      aes.encrypt_block(ctr, keystream);
      const std::size_t n = len - off < 16 ? len - off : 16;
      for (std::size_t i = 0; i < n; ++i) {
        out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
      }
      util::store_be32(ctr + 12, ++block_ctr);  // SP 800-38D inc32
    }
  }

  // Fused kernel: one walk over the data — T-table CTR keystream, XOR,
  // then the Shoup-table multiply over the ciphertext block, per 16-byte
  // block. Saves the second full pass (and its cache traffic) the split
  // shape pays; the heavy lifting per block is shared with aes_ctr_xor /
  // ghash_4bit, so the portable path stays bit-identical by construction.
  void gcm_crypt(const Aes& aes, const GhashKey& key,
                 const std::uint8_t counter[16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t len, std::uint8_t state[16],
                 bool encrypt) const override {
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter, 16);
    std::uint32_t block_ctr = util::load_be32(ctr + 12);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t keystream[16];
      aes.encrypt_block(ctr, keystream);
      util::store_be32(ctr + 12, ++block_ctr);  // SP 800-38D inc32
      const std::size_t n = len - off < 16 ? len - off : 16;
      std::uint8_t ct[16] = {};  // zero padding for the final partial block
      if (encrypt) {
        for (std::size_t i = 0; i < n; ++i) {
          ct[i] = static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
          out[off + i] = ct[i];
        }
      } else {
        std::memcpy(ct, in + off, n);  // capture before in-place overwrite
        for (std::size_t i = 0; i < n; ++i) {
          out[off + i] = static_cast<std::uint8_t>(ct[i] ^ keystream[i]);
        }
      }
      ghash_4bit(key, state, ct, 1);
    }
  }

  void ghash_init(GhashKey& key) const override {
    ghash_init_4bit(key);
    key.owner.store(this, std::memory_order_release);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    ghash_4bit(key, state, blocks, nblocks);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Shoup 4-bit-table GHASH. table = M[i] = i * H for every 4-bit nibble i
// (16 entries x 16 bytes — the whole GhashKey blob), multiplication walks
// the 32 nibbles of the state from the end, folding the bits shifted out
// of the low end back in through the precomputed remainder table.
// ---------------------------------------------------------------------------

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

inline U128 xor128(U128 a, const U128& b) {
  a.hi ^= b.hi;
  a.lo ^= b.lo;
  return a;
}

// What a 4-bit right-shift pushes out of GF(2^128): remainder of
// rem * x^-4 against the field polynomial, pre-shifted into the top 16
// bits of the high word.
constexpr std::uint64_t kGhashRem4bit[16] = {
    0x0000ULL << 48, 0x1C20ULL << 48, 0x3840ULL << 48, 0x2460ULL << 48,
    0x7080ULL << 48, 0x6CA0ULL << 48, 0x48C0ULL << 48, 0x54E0ULL << 48,
    0xE100ULL << 48, 0xFD20ULL << 48, 0xD940ULL << 48, 0xC560ULL << 48,
    0x9180ULL << 48, 0x8DA0ULL << 48, 0xA9C0ULL << 48, 0xB5E0ULL << 48};

}  // namespace

void ghash_init_4bit(GhashKey& key) {
  U128 table[16];
  U128 v{util::load_be64(key.h), util::load_be64(key.h + 8)};
  table[0] = U128{};
  table[8] = v;
  for (int i = 4; i > 0; i >>= 1) {
    // v /= x: right shift one bit, folding the field polynomial back in
    // when a set bit falls off the low end.
    const bool lsb = (v.lo & 1) != 0;
    v.lo = (v.hi << 63) | (v.lo >> 1);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xE100000000000000ULL;
    table[i] = v;
  }
  for (int i = 2; i < 16; i <<= 1) {
    for (int j = 1; j < i; ++j) table[i + j] = xor128(table[i], table[j]);
  }
  static_assert(sizeof(table) == sizeof(key.table));
  std::memcpy(key.table, table, sizeof(table));
}

void ghash_4bit(const GhashKey& key, std::uint8_t state[16],
                const std::uint8_t* blocks, std::size_t nblocks) {
  // key.table holds the object representation of U128[16] written by
  // ghash_init_4bit's memcpy (alignas(16) covers U128); read it in place
  // rather than re-copying 256 bytes per call — GHASH runs up to five
  // times per sealed packet (AAD, pads, payload, lengths).
  const U128* table = reinterpret_cast<const U128*>(key.table);
  std::uint8_t xi[16];
  std::memcpy(xi, state, 16);
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int i = 0; i < 16; ++i) xi[i] ^= blocks[16 * b + i];
    int cnt = 15;
    unsigned nibble = xi[15] & 0xF;
    unsigned high_nibble = xi[15] >> 4;
    U128 z = table[nibble];
    for (;;) {
      std::uint64_t rem = z.lo & 0xF;
      z.lo = (z.hi << 60) | (z.lo >> 4);
      z.hi = (z.hi >> 4) ^ kGhashRem4bit[rem];
      z = xor128(z, table[high_nibble]);
      if (--cnt < 0) break;
      nibble = xi[cnt] & 0xF;
      high_nibble = xi[cnt] >> 4;
      rem = z.lo & 0xF;
      z.lo = (z.hi << 60) | (z.lo >> 4);
      z.hi = (z.hi >> 4) ^ kGhashRem4bit[rem];
      z = xor128(z, table[nibble]);
    }
    util::store_be64(xi, z.hi);
    util::store_be64(xi + 8, z.lo);
  }
  std::memcpy(state, xi, 16);
}

void sha256_compress_portable(std::uint32_t state[8],
                              const std::uint8_t* blocks,
                              std::size_t nblocks) {
  for (std::size_t i = 0; i < nblocks; ++i) {
    compress_one(state, blocks + 64 * i);
  }
}

const CryptoBackend& portable_backend() {
  static const PortableBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
