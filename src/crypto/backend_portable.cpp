// Portable CryptoBackend: the PR 1 software fast path — 32-bit T-table
// AES (via the Aes block functions) and the 8-wide unrolled SHA-256
// compression. Runs on every CPU; the auto-selection fallback.
#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"

namespace nnfv::crypto {

namespace detail {

const std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// Rounds unrolled 8-wide: working variables are renamed per round instead
// of shuffled (no h=g; g=f; ... register churn).
#define NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, ki, wi)                   \
  do {                                                                      \
    const std::uint32_t t1 = (h) + (rotr(e, 6) ^ rotr(e, 11) ^              \
                                    rotr(e, 25)) +                          \
                             (((e) & (f)) ^ (~(e) & (g))) + (ki) + (wi);    \
    const std::uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +     \
                             (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));     \
    (d) += t1;                                                              \
    (h) = t1 + t2;                                                          \
  } while (0)

void compress_one(std::uint32_t state[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = util::load_be32(block + 4 * i);
  }
  for (int i = 16; i < 64; i += 2) {
    const std::uint32_t sa0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t sa1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + sa0 + w[i - 7] + sa1;
    const std::uint32_t sb0 =
        rotr(w[i - 14], 7) ^ rotr(w[i - 14], 18) ^ (w[i - 14] >> 3);
    const std::uint32_t sb1 =
        rotr(w[i - 1], 17) ^ rotr(w[i - 1], 19) ^ (w[i - 1] >> 10);
    w[i + 1] = w[i - 15] + sb0 + w[i - 6] + sb1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; i += 8) {
    NNFV_SHA256_ROUND(a, b, c, d, e, f, g, h, kSha256K[i + 0], w[i + 0]);
    NNFV_SHA256_ROUND(h, a, b, c, d, e, f, g, kSha256K[i + 1], w[i + 1]);
    NNFV_SHA256_ROUND(g, h, a, b, c, d, e, f, kSha256K[i + 2], w[i + 2]);
    NNFV_SHA256_ROUND(f, g, h, a, b, c, d, e, kSha256K[i + 3], w[i + 3]);
    NNFV_SHA256_ROUND(e, f, g, h, a, b, c, d, kSha256K[i + 4], w[i + 4]);
    NNFV_SHA256_ROUND(d, e, f, g, h, a, b, c, kSha256K[i + 5], w[i + 5]);
    NNFV_SHA256_ROUND(c, d, e, f, g, h, a, b, kSha256K[i + 6], w[i + 6]);
    NNFV_SHA256_ROUND(b, c, d, e, f, g, h, a, kSha256K[i + 7], w[i + 7]);
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

#undef NNFV_SHA256_ROUND

class PortableBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "portable"; }
  [[nodiscard]] bool usable() const override { return true; }

  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      aes.encrypt_block(in + 16 * i, out + 16 * i);
    }
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    for (std::size_t i = 0; i < nblocks; ++i) {
      aes.decrypt_block(in + 16 * i, out + 16 * i);
    }
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t block[16];
      for (std::size_t i = 0; i < 16; ++i) {
        block[i] = static_cast<std::uint8_t>(in[off + i] ^ chain[i]);
      }
      aes.encrypt_block(block, out + off);
      std::memcpy(chain, out + off, 16);
    }
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
      std::uint8_t next_chain[16];  // survives in-place decryption
      std::memcpy(next_chain, in + off, 16);
      std::uint8_t block[16];
      aes.decrypt_block(in + off, block);
      for (std::size_t i = 0; i < 16; ++i) {
        out[off + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
      }
      std::memcpy(chain, next_chain, 16);
    }
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    sha256_compress_portable(state, blocks, nblocks);
  }
};

}  // namespace

void sha256_compress_portable(std::uint32_t state[8],
                              const std::uint8_t* blocks,
                              std::size_t nblocks) {
  for (std::size_t i = 0; i < nblocks; ++i) {
    compress_one(state, blocks + 64 * i);
  }
}

const CryptoBackend& portable_backend() {
  static const PortableBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
