// Hardware CryptoBackend: AES-NI block ops and SHA-NI compression.
//
// This TU is the only one compiled with -maes -msha -mpclmul -mssse3
// -msse4.1 (see
// CMakeLists); it is built unconditionally on x86 and *selected* only when
// util::cpu_features() says the instructions exist, so a binary built here
// still runs (on the portable backend) on older CPUs. On non-x86 targets
// the backend reports !usable() and contains no intrinsics.
//
// Key material: the AESENC round keys are the Aes::enc_round_keys() words
// serialised big-endian; AESDEC wants InvMixColumns-transformed keys in
// reversed order, which is exactly what the equivalent-inverse schedule in
// Aes::dec_round_keys() holds. Both serialisations are cached inside Aes
// (enc_schedule_bytes()/dec_schedule_bytes(), filled once at key
// expansion), so RoundKeys here is pure aligned loads. CBC decryption runs
// 4 blocks in flight (independent chains), CBC encryption is inherently
// serial; the GCM path (CTR keystream + PCLMUL GHASH with a single
// 8-block aggregated reduction over H^1..H^8, single-buffer and
// multi-buffer — see gcm_clmul_kernels.inc) pipelines both directions —
// which is why it is the default ESP transform.
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"
#include "util/cpuid.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AES__) && \
    defined(__SSSE3__) && defined(__SSE4_1__) && defined(__PCLMUL__)
#define NNFV_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace nnfv::crypto {

namespace detail {

namespace {

#ifdef NNFV_AESNI_COMPILED

// The GCM kernel suite (RoundKeys plumbing, 8-block CTR, H^1..H^8
// aggregated GHASH, the stitched and multi-buffer gcm_crypt kernels) is
// shared source with backend_vaes.cpp — each TU compiles its own copy at
// its own ISA level.
#include "crypto/gcm_clmul_kernels.inc"

void aes_encrypt_blocks_ni(const Aes& aes, const std::uint8_t* in,
                           std::uint8_t* out, std::size_t nblocks) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  std::size_t i = 0;
  // 4 independent blocks in flight to cover the AESENC latency.
  for (; i + 4 <= nblocks; i += 4) {
    __m128i b0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    __m128i b1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 1)));
    __m128i b2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 2)));
    __m128i b3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 3)));
    b0 = _mm_xor_si128(b0, keys.rk[0]);
    b1 = _mm_xor_si128(b1, keys.rk[0]);
    b2 = _mm_xor_si128(b2, keys.rk[0]);
    b3 = _mm_xor_si128(b3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesenc_si128(b0, keys.rk[r]);
      b1 = _mm_aesenc_si128(b1, keys.rk[r]);
      b2 = _mm_aesenc_si128(b2, keys.rk[r]);
      b3 = _mm_aesenc_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesenclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesenclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesenclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesenclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 1)), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 2)), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 3)), b3);
  }
  for (; i < nblocks; ++i) {
    const __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     encrypt_one(keys, block));
  }
}

void aes_decrypt_blocks_ni(const Aes& aes, const std::uint8_t* in,
                           std::uint8_t* out, std::size_t nblocks) {
  const RoundKeys keys(aes.dec_schedule_bytes(), aes.rounds());
  std::size_t i = 0;
  // ECB blocks are independent: 4 in flight to cover the AESDEC latency,
  // mirroring aes_encrypt_blocks_ni.
  for (; i + 4 <= nblocks; i += 4) {
    __m128i b0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    __m128i b1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 1)));
    __m128i b2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 2)));
    __m128i b3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 3)));
    b0 = _mm_xor_si128(b0, keys.rk[0]);
    b1 = _mm_xor_si128(b1, keys.rk[0]);
    b2 = _mm_xor_si128(b2, keys.rk[0]);
    b3 = _mm_xor_si128(b3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesdec_si128(b0, keys.rk[r]);
      b1 = _mm_aesdec_si128(b1, keys.rk[r]);
      b2 = _mm_aesdec_si128(b2, keys.rk[r]);
      b3 = _mm_aesdec_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesdeclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesdeclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesdeclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 1)), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 2)), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 3)), b3);
  }
  for (; i < nblocks; ++i) {
    const __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     decrypt_one(keys, block));
  }
}

void cbc_encrypt_ni(const Aes& aes, const std::uint8_t* iv,
                    const std::uint8_t* in, std::uint8_t* out,
                    std::size_t len) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  for (std::size_t off = 0; off < len; off += 16) {
    const __m128i plain =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    chain = encrypt_one(keys, _mm_xor_si128(plain, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), chain);
  }
}

void cbc_decrypt_ni(const Aes& aes, const std::uint8_t* iv,
                    const std::uint8_t* in, std::uint8_t* out,
                    std::size_t len) {
  const RoundKeys keys(aes.dec_schedule_bytes(), aes.rounds());
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  std::size_t off = 0;
  // Unlike encryption the chain blocks are all known up front, so 4 AESDEC
  // pipelines run in parallel.
  for (; off + 64 <= len; off += 64) {
    const __m128i c0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    const __m128i c1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 16));
    const __m128i c2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 32));
    const __m128i c3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 48));
    __m128i b0 = _mm_xor_si128(c0, keys.rk[0]);
    __m128i b1 = _mm_xor_si128(c1, keys.rk[0]);
    __m128i b2 = _mm_xor_si128(c2, keys.rk[0]);
    __m128i b3 = _mm_xor_si128(c3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesdec_si128(b0, keys.rk[r]);
      b1 = _mm_aesdec_si128(b1, keys.rk[r]);
      b2 = _mm_aesdec_si128(b2, keys.rk[r]);
      b3 = _mm_aesdec_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesdeclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesdeclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesdeclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(b0, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16),
                     _mm_xor_si128(b1, c0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 32),
                     _mm_xor_si128(b2, c1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 48),
                     _mm_xor_si128(b3, c2));
    chain = c3;
  }
  for (; off < len; off += 16) {
    const __m128i cipher =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(decrypt_one(keys, cipher), chain));
    chain = cipher;
  }
}

#ifdef __SHA__

// Round constants come from the table shared with the portable
// compression (detail::kSha256K).
inline __m128i k256(int group) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(&kSha256K[4 * group]));
}

/// The standard two-lane SHA-NI compression (state packed as ABEF/CDGH
/// for SHA256RNDS2, message schedule advanced with SHA256MSG1/MSG2).
void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t* data,
                           std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack a,b,c,d / e,f,g,h into the ABEF / CDGH lanes.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg;

    // Rounds 0-15: load + byte-swap the four message words.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)),
        kShuffle);
    msg = _mm_add_epi32(msg0, k256(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)),
        kShuffle);
    msg = _mm_add_epi32(msg1, k256(1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)),
        kShuffle);
    msg = _mm_add_epi32(msg2, k256(2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)),
        kShuffle);

    // Rounds 12-47: four-round groups; each advances one schedule
    // register with MSG2(alignr carry) and primes another with MSG1.
#define NNFV_SHA_GROUP(group, ma, mb, mc, md)                      \
    do {                                                           \
      msg = _mm_add_epi32(ma, k256(group));                        \
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);         \
      const __m128i carry = _mm_alignr_epi8(ma, md, 4);            \
      mb = _mm_add_epi32(mb, carry);                               \
      mb = _mm_sha256msg2_epu32(mb, ma);                           \
      msg = _mm_shuffle_epi32(msg, 0x0E);                          \
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);         \
      md = _mm_sha256msg1_epu32(md, ma);                           \
    } while (0)

    NNFV_SHA_GROUP(3, msg3, msg0, msg1, msg2);
    NNFV_SHA_GROUP(4, msg0, msg1, msg2, msg3);
    NNFV_SHA_GROUP(5, msg1, msg2, msg3, msg0);
    NNFV_SHA_GROUP(6, msg2, msg3, msg0, msg1);
    NNFV_SHA_GROUP(7, msg3, msg0, msg1, msg2);
    NNFV_SHA_GROUP(8, msg0, msg1, msg2, msg3);
    NNFV_SHA_GROUP(9, msg1, msg2, msg3, msg0);
    NNFV_SHA_GROUP(10, msg2, msg3, msg0, msg1);
    NNFV_SHA_GROUP(11, msg3, msg0, msg1, msg2);
    // Rounds 48-51 still MSG1-prime msg3 (it advances in rounds 56-59).
    NNFV_SHA_GROUP(12, msg0, msg1, msg2, msg3);
#undef NNFV_SHA_GROUP

    // Rounds 52-63: the tail of the schedule, no more MSG1 priming.
    msg = _mm_add_epi32(msg1, k256(13));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    __m128i carry = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, carry);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg = _mm_add_epi32(msg2, k256(14));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    carry = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, carry);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg = _mm_add_epi32(msg3, k256(15));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // Unpack ABEF/CDGH back to a..h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // __SHA__

#endif  // NNFV_AESNI_COMPILED

class AesniBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "aesni"; }

  [[nodiscard]] bool usable() const override {
#ifdef NNFV_AESNI_COMPILED
    const util::CpuFeatures& f = util::cpu_features();
    return f.aesni && f.ssse3 && f.sse41;
#else
    return false;
#endif
  }

#ifdef NNFV_AESNI_COMPILED
  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aes_encrypt_blocks_ni(aes, in, out, nblocks);
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aes_decrypt_blocks_ni(aes, in, out, nblocks);
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    cbc_encrypt_ni(aes, iv, in, out, len);
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    cbc_decrypt_ni(aes, iv, in, out, len);
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
#ifdef __SHA__
    // SHA-NI appeared later than AES-NI; fall back per-feature so e.g.
    // pre-Ice-Lake Xeons still get hardware AES.
    if (util::cpu_features().sha_ni) {
      sha256_compress_shani(state, blocks, nblocks);
      return;
    }
#endif
    sha256_compress_portable(state, blocks, nblocks);
  }

  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    aes_ctr_xor_ni(aes, counter, in, out, len);
  }

  // PCLMULQDQ is a distinct CPUID bit from AES-NI (both date to
  // Westmere, but virtualised CPUs sometimes mask one); fall back
  // per-feature to the shared 4-bit table so GCM still runs with
  // hardware AES.
  void ghash_init(GhashKey& key) const override {
    if (util::cpu_features().pclmul) {
      ghash_init_clmul(key);
    } else {
      ghash_init_4bit(key);
    }
    key.owner.store(this, std::memory_order_release);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    if (util::cpu_features().pclmul) {
      ghash_clmul(key, state, blocks, nblocks);
    } else {
      ghash_4bit(key, state, blocks, nblocks);
    }
  }

  void gcm_crypt(const Aes& aes, const GhashKey& key,
                 const std::uint8_t counter[16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t len, std::uint8_t state[16],
                 bool encrypt) const override {
    if (util::cpu_features().pclmul) {
      gcm_crypt_clmul(aes, key, counter, in, out, len, state, encrypt);
    } else {
      // Without PCLMULQDQ the GHASH half is the shared 4-bit table and
      // key.table holds its layout; fall back to the split two-pass
      // (hardware CTR + table GHASH, in-place-safe pass ordering).
      CryptoBackend::gcm_crypt(aes, key, counter, in, out, len, state,
                               encrypt);
    }
  }

  [[nodiscard]] bool gcm_crypt_mb(const Aes& aes, const GhashKey& key,
                                  GcmMbLane* lanes,
                                  std::size_t nlanes) const override {
    if (!util::cpu_features().pclmul) {
      // key.table holds the 4-bit layout; the base per-lane loop lands
      // in this backend's split-pass gcm_crypt fallback above.
      return CryptoBackend::gcm_crypt_mb(aes, key, lanes, nlanes);
    }
    if (nlanes == 0 || nlanes > kMaxMbLanes) return false;
    for (std::size_t i = 1; i < nlanes; ++i) {
      if (lanes[i].encrypt != lanes[0].encrypt) return false;
    }
    gcm_crypt_mb_clmul(aes, key, lanes, nlanes);
    return true;
  }
#else   // !NNFV_AESNI_COMPILED: never selected (usable() is false); the
        // bodies satisfy the interface on non-x86 builds.
  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    portable_backend().aes_encrypt_blocks(aes, in, out, nblocks);
  }
  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    portable_backend().aes_decrypt_blocks(aes, in, out, nblocks);
  }
  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().cbc_encrypt(aes, iv, in, out, len);
  }
  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().cbc_decrypt(aes, iv, in, out, len);
  }
  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    sha256_compress_portable(state, blocks, nblocks);
  }
  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().aes_ctr_xor(aes, counter, in, out, len);
  }
  void ghash_init(GhashKey& key) const override {
    ghash_init_4bit(key);
    key.owner.store(this, std::memory_order_release);
  }
  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    ghash_4bit(key, state, blocks, nblocks);
  }
#endif  // NNFV_AESNI_COMPILED
};

}  // namespace

const CryptoBackend& aesni_backend() {
  static const AesniBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
