// Hardware CryptoBackend: AES-NI block ops and SHA-NI compression.
//
// This TU is the only one compiled with -maes -msha -mpclmul -mssse3
// -msse4.1 (see
// CMakeLists); it is built unconditionally on x86 and *selected* only when
// util::cpu_features() says the instructions exist, so a binary built here
// still runs (on the portable backend) on older CPUs. On non-x86 targets
// the backend reports !usable() and contains no intrinsics.
//
// Key material: the AESENC round keys are the Aes::enc_round_keys() words
// serialised big-endian; AESDEC wants InvMixColumns-transformed keys in
// reversed order, which is exactly what the equivalent-inverse schedule in
// Aes::dec_round_keys() holds. Both serialisations are cached inside Aes
// (enc_schedule_bytes()/dec_schedule_bytes(), filled once at key
// expansion), so RoundKeys here is pure aligned loads. CBC decryption runs
// 4 blocks in flight (independent chains), CBC encryption is inherently
// serial; the GCM path (CTR keystream + PCLMUL GHASH) pipelines both
// directions — which is why it is the default ESP transform.
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"
#include "util/cpuid.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AES__) && \
    defined(__SSSE3__) && defined(__SSE4_1__) && defined(__PCLMUL__)
#define NNFV_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace nnfv::crypto {

namespace detail {

namespace {

#ifdef NNFV_AESNI_COMPILED

constexpr std::size_t kMaxRounds = 14;  // AES-256

/// Round keys in AESENC/AESDEC register format, read straight from the
/// schedule cache Aes fills at key expansion (16-byte aligned,
/// byte-serialised big-endian words == the register layout) — pure
/// aligned loads, no per-bulk-call serialisation.
struct RoundKeys {
  __m128i rk[kMaxRounds + 1];
  int rounds;

  RoundKeys(std::span<const std::uint8_t> schedule_bytes, int nrounds)
      : rounds(nrounds) {
    for (int r = 0; r <= nrounds; ++r) {
      rk[r] = _mm_load_si128(
          reinterpret_cast<const __m128i*>(schedule_bytes.data() + 16 * r));
    }
  }
};

inline __m128i encrypt_one(const RoundKeys& keys, __m128i block) {
  block = _mm_xor_si128(block, keys.rk[0]);
  for (int r = 1; r < keys.rounds; ++r) {
    block = _mm_aesenc_si128(block, keys.rk[r]);
  }
  return _mm_aesenclast_si128(block, keys.rk[keys.rounds]);
}

inline __m128i decrypt_one(const RoundKeys& keys, __m128i block) {
  block = _mm_xor_si128(block, keys.rk[0]);
  for (int r = 1; r < keys.rounds; ++r) {
    block = _mm_aesdec_si128(block, keys.rk[r]);
  }
  return _mm_aesdeclast_si128(block, keys.rk[keys.rounds]);
}

void aes_encrypt_blocks_ni(const Aes& aes, const std::uint8_t* in,
                           std::uint8_t* out, std::size_t nblocks) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  std::size_t i = 0;
  // 4 independent blocks in flight to cover the AESENC latency.
  for (; i + 4 <= nblocks; i += 4) {
    __m128i b0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    __m128i b1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 1)));
    __m128i b2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 2)));
    __m128i b3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 3)));
    b0 = _mm_xor_si128(b0, keys.rk[0]);
    b1 = _mm_xor_si128(b1, keys.rk[0]);
    b2 = _mm_xor_si128(b2, keys.rk[0]);
    b3 = _mm_xor_si128(b3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesenc_si128(b0, keys.rk[r]);
      b1 = _mm_aesenc_si128(b1, keys.rk[r]);
      b2 = _mm_aesenc_si128(b2, keys.rk[r]);
      b3 = _mm_aesenc_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesenclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesenclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesenclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesenclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 1)), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 2)), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 3)), b3);
  }
  for (; i < nblocks; ++i) {
    const __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     encrypt_one(keys, block));
  }
}

void aes_decrypt_blocks_ni(const Aes& aes, const std::uint8_t* in,
                           std::uint8_t* out, std::size_t nblocks) {
  const RoundKeys keys(aes.dec_schedule_bytes(), aes.rounds());
  std::size_t i = 0;
  // ECB blocks are independent: 4 in flight to cover the AESDEC latency,
  // mirroring aes_encrypt_blocks_ni.
  for (; i + 4 <= nblocks; i += 4) {
    __m128i b0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    __m128i b1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 1)));
    __m128i b2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 2)));
    __m128i b3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * (i + 3)));
    b0 = _mm_xor_si128(b0, keys.rk[0]);
    b1 = _mm_xor_si128(b1, keys.rk[0]);
    b2 = _mm_xor_si128(b2, keys.rk[0]);
    b3 = _mm_xor_si128(b3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesdec_si128(b0, keys.rk[r]);
      b1 = _mm_aesdec_si128(b1, keys.rk[r]);
      b2 = _mm_aesdec_si128(b2, keys.rk[r]);
      b3 = _mm_aesdec_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesdeclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesdeclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesdeclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 1)), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 2)), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + 3)), b3);
  }
  for (; i < nblocks; ++i) {
    const __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     decrypt_one(keys, block));
  }
}

void cbc_encrypt_ni(const Aes& aes, const std::uint8_t* iv,
                    const std::uint8_t* in, std::uint8_t* out,
                    std::size_t len) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  for (std::size_t off = 0; off < len; off += 16) {
    const __m128i plain =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    chain = encrypt_one(keys, _mm_xor_si128(plain, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), chain);
  }
}

void cbc_decrypt_ni(const Aes& aes, const std::uint8_t* iv,
                    const std::uint8_t* in, std::uint8_t* out,
                    std::size_t len) {
  const RoundKeys keys(aes.dec_schedule_bytes(), aes.rounds());
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  std::size_t off = 0;
  // Unlike encryption the chain blocks are all known up front, so 4 AESDEC
  // pipelines run in parallel.
  for (; off + 64 <= len; off += 64) {
    const __m128i c0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    const __m128i c1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 16));
    const __m128i c2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 32));
    const __m128i c3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off + 48));
    __m128i b0 = _mm_xor_si128(c0, keys.rk[0]);
    __m128i b1 = _mm_xor_si128(c1, keys.rk[0]);
    __m128i b2 = _mm_xor_si128(c2, keys.rk[0]);
    __m128i b3 = _mm_xor_si128(c3, keys.rk[0]);
    for (int r = 1; r < keys.rounds; ++r) {
      b0 = _mm_aesdec_si128(b0, keys.rk[r]);
      b1 = _mm_aesdec_si128(b1, keys.rk[r]);
      b2 = _mm_aesdec_si128(b2, keys.rk[r]);
      b3 = _mm_aesdec_si128(b3, keys.rk[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, keys.rk[keys.rounds]);
    b1 = _mm_aesdeclast_si128(b1, keys.rk[keys.rounds]);
    b2 = _mm_aesdeclast_si128(b2, keys.rk[keys.rounds]);
    b3 = _mm_aesdeclast_si128(b3, keys.rk[keys.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(b0, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16),
                     _mm_xor_si128(b1, c0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 32),
                     _mm_xor_si128(b2, c1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 48),
                     _mm_xor_si128(b3, c2));
    chain = c3;
  }
  for (; off < len; off += 16) {
    const __m128i cipher =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(decrypt_one(keys, cipher), chain));
    chain = cipher;
  }
}

// ---------------------------------------------------------------------------
// GCM kernels: CTR keystream with 8 counter blocks in flight, and PCLMUL
// GHASH with a 4-block aggregated reduction over precomputed H^1..H^4.
// ---------------------------------------------------------------------------

// Byte-reverses only the low 4 bytes (the inc32 counter lane), so the
// counter can live little-endian between blocks and increment with one
// paddd.
inline __m128i ctr_swap_mask() {
  return _mm_set_epi8(12, 13, 14, 15, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
}

void aes_ctr_xor_ni(const Aes& aes, const std::uint8_t counter[16],
                    const std::uint8_t* in, std::uint8_t* out,
                    std::size_t len) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  const __m128i kSwap = ctr_swap_mask();
  const __m128i kOne = _mm_set_epi32(1, 0, 0, 0);  // +1 in the counter lane
  __m128i ctr_le = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)), kSwap);
  std::size_t off = 0;
  // 8 independent counter blocks in flight: AESENC throughput-bound, not
  // latency-bound, unlike the chain-serial CBC encrypt this replaces.
  for (; off + 128 <= len; off += 128) {
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_xor_si128(_mm_shuffle_epi8(ctr_le, kSwap), keys.rk[0]);
      ctr_le = _mm_add_epi32(ctr_le, kOne);
    }
    for (int r = 1; r < keys.rounds; ++r) {
      for (int j = 0; j < 8; ++j) b[j] = _mm_aesenc_si128(b[j], keys.rk[r]);
    }
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_aesenclast_si128(b[j], keys.rk[keys.rounds]);
      const __m128i data = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + off + 16 * j));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16 * j),
                       _mm_xor_si128(b[j], data));
    }
  }
  for (; off + 16 <= len; off += 16) {
    const __m128i ks = encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap));
    ctr_le = _mm_add_epi32(ctr_le, kOne);
    const __m128i data =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                     _mm_xor_si128(ks, data));
  }
  if (off < len) {
    alignas(16) std::uint8_t keystream[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(keystream),
                    encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap)));
    for (std::size_t i = 0; off + i < len; ++i) {
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
    }
  }
}

// GHASH operands are held byte-reversed (as 128-bit big-endian integers);
// together with the post-multiply shift-left-one in gf128_reduce this
// realises the GCM reflected-bit convention on PCLMULQDQ.
inline __m128i bswap128(__m128i x) {
  return _mm_shuffle_epi8(
      x, _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));
}

/// 256-bit carry-less product [hi:lo] = a (x) b, no reduction — so
/// aggregated multiplies can XOR-accumulate products before one shared
/// reduction (shift and reduce are GF(2)-linear).
inline void clmul256(__m128i a, __m128i b, __m128i* hi, __m128i* lo) {
  const __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
  const __m128i t1 = _mm_clmulepi64_si128(a, b, 0x10);
  const __m128i t2 = _mm_clmulepi64_si128(a, b, 0x01);
  const __m128i t3 = _mm_clmulepi64_si128(a, b, 0x11);
  const __m128i mid = _mm_xor_si128(t1, t2);
  *lo = _mm_xor_si128(t0, _mm_slli_si128(mid, 8));
  *hi = _mm_xor_si128(t3, _mm_srli_si128(mid, 8));
}

/// Shifts the 256-bit product left one bit (the reflected-multiply
/// fix-up) and reduces modulo x^128 + x^7 + x^2 + x + 1 in two phases.
inline __m128i gf128_reduce(__m128i hi, __m128i lo) {
  __m128i carry_lo = _mm_srli_epi32(lo, 31);
  __m128i carry_hi = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);
  const __m128i cross = _mm_srli_si128(carry_lo, 12);
  carry_hi = _mm_slli_si128(carry_hi, 4);
  carry_lo = _mm_slli_si128(carry_lo, 4);
  lo = _mm_or_si128(lo, carry_lo);
  hi = _mm_or_si128(hi, _mm_or_si128(carry_hi, cross));

  __m128i fold = _mm_xor_si128(
      _mm_xor_si128(_mm_slli_epi32(lo, 31), _mm_slli_epi32(lo, 30)),
      _mm_slli_epi32(lo, 25));
  const __m128i fold_hi = _mm_srli_si128(fold, 4);
  fold = _mm_slli_si128(fold, 12);
  lo = _mm_xor_si128(lo, fold);
  const __m128i shifted = _mm_xor_si128(
      _mm_xor_si128(_mm_srli_epi32(lo, 1), _mm_srli_epi32(lo, 2)),
      _mm_xor_si128(_mm_srli_epi32(lo, 7), fold_hi));
  lo = _mm_xor_si128(lo, shifted);
  return _mm_xor_si128(hi, lo);
}

inline __m128i gf128_mul(__m128i a, __m128i b) {
  __m128i hi;
  __m128i lo;
  clmul256(a, b, &hi, &lo);
  return gf128_reduce(hi, lo);
}

/// key.table holds H^1..H^4 (byte-reversed __m128i), the powers the
/// aggregated 4-block ghash needs.
void ghash_init_clmul(GhashKey& key) {
  const __m128i h1 =
      bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(key.h)));
  const __m128i h2 = gf128_mul(h1, h1);
  const __m128i h3 = gf128_mul(h2, h1);
  const __m128i h4 = gf128_mul(h3, h1);
  __m128i* table = reinterpret_cast<__m128i*>(key.table);
  _mm_store_si128(table + 0, h1);
  _mm_store_si128(table + 1, h2);
  _mm_store_si128(table + 2, h3);
  _mm_store_si128(table + 3, h4);
}

void ghash_clmul(const GhashKey& key, std::uint8_t state[16],
                 const std::uint8_t* blocks, std::size_t nblocks) {
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  const __m128i h1 = _mm_load_si128(table + 0);
  const __m128i h2 = _mm_load_si128(table + 1);
  const __m128i h3 = _mm_load_si128(table + 2);
  const __m128i h4 = _mm_load_si128(table + 3);
  __m128i x = bswap128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state)));
  // Aggregated reduction: X1*H^4 ^ X2*H^3 ^ X3*H^2 ^ X4*H^1 — the four
  // clmul trees are independent, and the serial dependency through the
  // state is one reduction per 4 blocks instead of per block.
  for (; nblocks >= 4; nblocks -= 4, blocks += 64) {
    const __m128i b0 = _mm_xor_si128(
        bswap128(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(blocks))), x);
    const __m128i b1 = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)));
    const __m128i b2 = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)));
    const __m128i b3 = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)));
    __m128i hi;
    __m128i lo;
    __m128i hi_part;
    __m128i lo_part;
    clmul256(b0, h4, &hi, &lo);
    clmul256(b1, h3, &hi_part, &lo_part);
    hi = _mm_xor_si128(hi, hi_part);
    lo = _mm_xor_si128(lo, lo_part);
    clmul256(b2, h2, &hi_part, &lo_part);
    hi = _mm_xor_si128(hi, hi_part);
    lo = _mm_xor_si128(lo, lo_part);
    clmul256(b3, h1, &hi_part, &lo_part);
    hi = _mm_xor_si128(hi, hi_part);
    lo = _mm_xor_si128(lo, lo_part);
    x = gf128_reduce(hi, lo);
  }
  for (; nblocks > 0; --nblocks, blocks += 16) {
    const __m128i block = bswap128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks)));
    x = gf128_mul(_mm_xor_si128(block, x), h1);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), bswap128(x));
}

/// One aggregated 4-block GHASH step: x = ((x^c0)*H^4) ^ (c1*H^3) ^
/// (c2*H^2) ^ (c3*H^1), reduced once. Blocks already byte-reversed.
inline __m128i ghash4(__m128i x, __m128i c0, __m128i c1, __m128i c2,
                      __m128i c3, __m128i h1, __m128i h2, __m128i h3,
                      __m128i h4) {
  __m128i hi;
  __m128i lo;
  __m128i hip;
  __m128i lop;
  clmul256(_mm_xor_si128(c0, x), h4, &hi, &lo);
  clmul256(c1, h3, &hip, &lop);
  hi = _mm_xor_si128(hi, hip);
  lo = _mm_xor_si128(lo, lop);
  clmul256(c2, h2, &hip, &lop);
  hi = _mm_xor_si128(hi, hip);
  lo = _mm_xor_si128(lo, lop);
  clmul256(c3, h1, &hip, &lop);
  hi = _mm_xor_si128(hi, hip);
  lo = _mm_xor_si128(lo, lop);
  return gf128_reduce(hi, lo);
}

// ---------------------------------------------------------------------------
// Stitched GCM: the fused gcm_crypt kernel. 8 counter blocks in flight
// against the 4-block aggregated PCLMUL reduction, software-pipelined one
// 128-byte chunk deep — while chunk i's AESENC chains run, the GHASH of
// chunk i-1's ciphertext issues between the rounds, so the AES units and
// the carry-less multiplier are busy simultaneously instead of in two
// separate passes over the data (which also pays the payload's cache
// traffic twice).
// ---------------------------------------------------------------------------

void gcm_crypt_clmul(const Aes& aes, const GhashKey& key,
                     const std::uint8_t counter[16], const std::uint8_t* in,
                     std::uint8_t* out, std::size_t len,
                     std::uint8_t state[16], bool encrypt) {
  const RoundKeys keys(aes.enc_schedule_bytes(), aes.rounds());
  const __m128i* table = reinterpret_cast<const __m128i*>(key.table);
  const __m128i h1 = _mm_load_si128(table + 0);
  const __m128i h2 = _mm_load_si128(table + 1);
  const __m128i h3 = _mm_load_si128(table + 2);
  const __m128i h4 = _mm_load_si128(table + 3);
  const __m128i kSwap = ctr_swap_mask();
  const __m128i kOne = _mm_set_epi32(1, 0, 0, 0);
  __m128i ctr_le = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)), kSwap);
  __m128i x =
      bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state)));

  // The previous chunk's ciphertext, byte-reversed and held in registers
  // (values, not pointers: in-place decryption overwrites the buffer).
  __m128i pend[8];
  bool have_pend = false;

  std::size_t off = 0;
  for (; off + 128 <= len; off += 128) {
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_xor_si128(_mm_shuffle_epi8(ctr_le, kSwap), keys.rk[0]);
      ctr_le = _mm_add_epi32(ctr_le, kOne);
    }
    if (have_pend) {
      // The pipeline payoff: one AESENC round for all 8 lanes between
      // each clmul bundle of the previous chunk's GHASH. The two
      // instruction streams have no data dependency, so they retire in
      // parallel; only the second 4-block aggregate waits on the first
      // reduction.
      int r = 1;
      const auto aes_round = [&] {
        if (r < keys.rounds) {
          for (int j = 0; j < 8; ++j) {
            b[j] = _mm_aesenc_si128(b[j], keys.rk[r]);
          }
          ++r;
        }
      };
      __m128i hi;
      __m128i lo;
      __m128i hip;
      __m128i lop;
      clmul256(_mm_xor_si128(pend[0], x), h4, &hi, &lo);
      aes_round();
      clmul256(pend[1], h3, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      clmul256(pend[2], h2, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      clmul256(pend[3], h1, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      x = gf128_reduce(hi, lo);
      aes_round();
      clmul256(_mm_xor_si128(pend[4], x), h4, &hi, &lo);
      aes_round();
      clmul256(pend[5], h3, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      clmul256(pend[6], h2, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      clmul256(pend[7], h1, &hip, &lop);
      hi = _mm_xor_si128(hi, hip);
      lo = _mm_xor_si128(lo, lop);
      aes_round();
      x = gf128_reduce(hi, lo);
      while (r < keys.rounds) aes_round();
    } else {
      for (int r = 1; r < keys.rounds; ++r) {
        for (int j = 0; j < 8; ++j) {
          b[j] = _mm_aesenc_si128(b[j], keys.rk[r]);
        }
      }
    }
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_aesenclast_si128(b[j], keys.rk[keys.rounds]);
      const __m128i data = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + off + 16 * j));
      const __m128i ct = _mm_xor_si128(b[j], data);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16 * j), ct);
      pend[j] = bswap128(encrypt ? ct : data);
    }
    have_pend = true;
  }
  // Drain the chunk still in the pipeline.
  if (have_pend) {
    x = ghash4(x, pend[0], pend[1], pend[2], pend[3], h1, h2, h3, h4);
    x = ghash4(x, pend[4], pend[5], pend[6], pend[7], h1, h2, h3, h4);
  }
  // Tail: remaining full blocks, then the zero-padded partial block.
  for (; off + 16 <= len; off += 16) {
    const __m128i ks = encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap));
    ctr_le = _mm_add_epi32(ctr_le, kOne);
    const __m128i data =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
    const __m128i ct = _mm_xor_si128(ks, data);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off), ct);
    x = gf128_mul(_mm_xor_si128(bswap128(encrypt ? ct : data), x), h1);
  }
  if (off < len) {
    alignas(16) std::uint8_t keystream[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(keystream),
                    encrypt_one(keys, _mm_shuffle_epi8(ctr_le, kSwap)));
    alignas(16) std::uint8_t ctblock[16] = {};
    for (std::size_t i = 0; off + i < len; ++i) {
      const std::uint8_t d = in[off + i];
      const std::uint8_t c = static_cast<std::uint8_t>(d ^ keystream[i]);
      out[off + i] = c;
      ctblock[i] = encrypt ? c : d;
    }
    x = gf128_mul(
        _mm_xor_si128(
            bswap128(_mm_load_si128(reinterpret_cast<__m128i*>(ctblock))), x),
        h1);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), bswap128(x));
}

#ifdef __SHA__

// Round constants come from the table shared with the portable
// compression (detail::kSha256K).
inline __m128i k256(int group) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(&kSha256K[4 * group]));
}

/// The standard two-lane SHA-NI compression (state packed as ABEF/CDGH
/// for SHA256RNDS2, message schedule advanced with SHA256MSG1/MSG2).
void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t* data,
                           std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack a,b,c,d / e,f,g,h into the ABEF / CDGH lanes.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg;

    // Rounds 0-15: load + byte-swap the four message words.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)),
        kShuffle);
    msg = _mm_add_epi32(msg0, k256(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)),
        kShuffle);
    msg = _mm_add_epi32(msg1, k256(1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)),
        kShuffle);
    msg = _mm_add_epi32(msg2, k256(2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)),
        kShuffle);

    // Rounds 12-47: four-round groups; each advances one schedule
    // register with MSG2(alignr carry) and primes another with MSG1.
#define NNFV_SHA_GROUP(group, ma, mb, mc, md)                      \
    do {                                                           \
      msg = _mm_add_epi32(ma, k256(group));                        \
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);         \
      const __m128i carry = _mm_alignr_epi8(ma, md, 4);            \
      mb = _mm_add_epi32(mb, carry);                               \
      mb = _mm_sha256msg2_epu32(mb, ma);                           \
      msg = _mm_shuffle_epi32(msg, 0x0E);                          \
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);         \
      md = _mm_sha256msg1_epu32(md, ma);                           \
    } while (0)

    NNFV_SHA_GROUP(3, msg3, msg0, msg1, msg2);
    NNFV_SHA_GROUP(4, msg0, msg1, msg2, msg3);
    NNFV_SHA_GROUP(5, msg1, msg2, msg3, msg0);
    NNFV_SHA_GROUP(6, msg2, msg3, msg0, msg1);
    NNFV_SHA_GROUP(7, msg3, msg0, msg1, msg2);
    NNFV_SHA_GROUP(8, msg0, msg1, msg2, msg3);
    NNFV_SHA_GROUP(9, msg1, msg2, msg3, msg0);
    NNFV_SHA_GROUP(10, msg2, msg3, msg0, msg1);
    NNFV_SHA_GROUP(11, msg3, msg0, msg1, msg2);
    // Rounds 48-51 still MSG1-prime msg3 (it advances in rounds 56-59).
    NNFV_SHA_GROUP(12, msg0, msg1, msg2, msg3);
#undef NNFV_SHA_GROUP

    // Rounds 52-63: the tail of the schedule, no more MSG1 priming.
    msg = _mm_add_epi32(msg1, k256(13));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    __m128i carry = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, carry);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg = _mm_add_epi32(msg2, k256(14));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    carry = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, carry);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg = _mm_add_epi32(msg3, k256(15));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // Unpack ABEF/CDGH back to a..h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // __SHA__

#endif  // NNFV_AESNI_COMPILED

class AesniBackend final : public CryptoBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "aesni"; }

  [[nodiscard]] bool usable() const override {
#ifdef NNFV_AESNI_COMPILED
    const util::CpuFeatures& f = util::cpu_features();
    return f.aesni && f.ssse3 && f.sse41;
#else
    return false;
#endif
  }

#ifdef NNFV_AESNI_COMPILED
  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aes_encrypt_blocks_ni(aes, in, out, nblocks);
  }

  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    aes_decrypt_blocks_ni(aes, in, out, nblocks);
  }

  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    cbc_encrypt_ni(aes, iv, in, out, len);
  }

  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    cbc_decrypt_ni(aes, iv, in, out, len);
  }

  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
#ifdef __SHA__
    // SHA-NI appeared later than AES-NI; fall back per-feature so e.g.
    // pre-Ice-Lake Xeons still get hardware AES.
    if (util::cpu_features().sha_ni) {
      sha256_compress_shani(state, blocks, nblocks);
      return;
    }
#endif
    sha256_compress_portable(state, blocks, nblocks);
  }

  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    aes_ctr_xor_ni(aes, counter, in, out, len);
  }

  // PCLMULQDQ is a distinct CPUID bit from AES-NI (both date to
  // Westmere, but virtualised CPUs sometimes mask one); fall back
  // per-feature to the shared 4-bit table so GCM still runs with
  // hardware AES.
  void ghash_init(GhashKey& key) const override {
    if (util::cpu_features().pclmul) {
      ghash_init_clmul(key);
    } else {
      ghash_init_4bit(key);
    }
    key.owner.store(this, std::memory_order_release);
  }

  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    if (util::cpu_features().pclmul) {
      ghash_clmul(key, state, blocks, nblocks);
    } else {
      ghash_4bit(key, state, blocks, nblocks);
    }
  }

  void gcm_crypt(const Aes& aes, const GhashKey& key,
                 const std::uint8_t counter[16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t len, std::uint8_t state[16],
                 bool encrypt) const override {
    if (util::cpu_features().pclmul) {
      gcm_crypt_clmul(aes, key, counter, in, out, len, state, encrypt);
    } else {
      // Without PCLMULQDQ the GHASH half is the shared 4-bit table and
      // key.table holds its layout; fall back to the split two-pass
      // (hardware CTR + table GHASH, in-place-safe pass ordering).
      CryptoBackend::gcm_crypt(aes, key, counter, in, out, len, state,
                               encrypt);
    }
  }
#else   // !NNFV_AESNI_COMPILED: never selected (usable() is false); the
        // bodies satisfy the interface on non-x86 builds.
  void aes_encrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    portable_backend().aes_encrypt_blocks(aes, in, out, nblocks);
  }
  void aes_decrypt_blocks(const Aes& aes, const std::uint8_t* in,
                          std::uint8_t* out,
                          std::size_t nblocks) const override {
    portable_backend().aes_decrypt_blocks(aes, in, out, nblocks);
  }
  void cbc_encrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().cbc_encrypt(aes, iv, in, out, len);
  }
  void cbc_decrypt(const Aes& aes, const std::uint8_t* iv,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().cbc_decrypt(aes, iv, in, out, len);
  }
  void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks,
                       std::size_t nblocks) const override {
    sha256_compress_portable(state, blocks, nblocks);
  }
  void aes_ctr_xor(const Aes& aes, const std::uint8_t counter[16],
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len) const override {
    portable_backend().aes_ctr_xor(aes, counter, in, out, len);
  }
  void ghash_init(GhashKey& key) const override {
    ghash_init_4bit(key);
    key.owner.store(this, std::memory_order_release);
  }
  void ghash(const GhashKey& key, std::uint8_t state[16],
             const std::uint8_t* blocks, std::size_t nblocks) const override {
    ghash_4bit(key, state, blocks, nblocks);
  }
#endif  // NNFV_AESNI_COMPILED
};

}  // namespace

const CryptoBackend& aesni_backend() {
  static const AesniBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace nnfv::crypto
