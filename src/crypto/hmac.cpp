#include "crypto/hmac.hpp"

namespace nnfv::crypto {

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace nnfv::crypto
