#include "crypto/sha1.hpp"

#include <cstring>

#include "util/byteorder.hpp"

namespace nnfv::crypto {

namespace {
std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = util::load_be32(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::final() {
  const std::uint64_t bits = bit_count_;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len =
      (rem < 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  update({pad, pad_len});
  std::uint8_t len_be[8];
  util::store_be64(len_be, bits);
  update({len_be, 8});

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) {
    util::store_be32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::digest(
    std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.final();
}

}  // namespace nnfv::crypto
