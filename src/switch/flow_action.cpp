#include "switch/flow_action.hpp"

#include "packet/builder.hpp"

namespace nnfv::nfswitch {

std::string FlowAction::to_string() const {
  switch (type) {
    case Type::kOutput:
      return "output:" + std::to_string(port);
    case Type::kPushVlan:
      return "push_vlan:" + std::to_string(vlan);
    case Type::kPopVlan:
      return "pop_vlan";
    case Type::kSetVlan:
      return "set_vlan:" + std::to_string(vlan);
    case Type::kSetEthSrc:
      return "set_eth_src:" + mac.to_string();
    case Type::kSetEthDst:
      return "set_eth_dst:" + mac.to_string();
    case Type::kDrop:
      return "drop";
    case Type::kController:
      return "controller";
  }
  return "?";
}

ActionOutcome apply_actions(const std::vector<FlowAction>& actions,
                            packet::PacketBuffer& frame) {
  ActionOutcome outcome;
  // Replicated frames arrive as refcounted clones; header rewrites below
  // must not bleed into sibling replicas.
  frame.unshare();
  for (const FlowAction& action : actions) {
    switch (action.type) {
      case FlowAction::Type::kOutput:
        outcome.outputs.push_back(action.port);
        break;
      case FlowAction::Type::kPushVlan:
      case FlowAction::Type::kSetVlan:
        packet::set_vlan(frame, action.vlan);
        break;
      case FlowAction::Type::kPopVlan:
        packet::set_vlan(frame, std::nullopt);
        break;
      case FlowAction::Type::kSetEthSrc: {
        auto eth = packet::parse_ethernet(frame.data());
        if (eth) {
          packet::EthernetHeader hdr = eth.value();
          hdr.src = action.mac;
          packet::write_ethernet(hdr,
                                 frame.data().subspan(0, hdr.wire_size()));
        }
        break;
      }
      case FlowAction::Type::kSetEthDst: {
        auto eth = packet::parse_ethernet(frame.data());
        if (eth) {
          packet::EthernetHeader hdr = eth.value();
          hdr.dst = action.mac;
          packet::write_ethernet(hdr,
                                 frame.data().subspan(0, hdr.wire_size()));
        }
        break;
      }
      case FlowAction::Type::kDrop:
        outcome.dropped = true;
        return outcome;
      case FlowAction::Type::kController:
        outcome.to_controller = true;
        break;
    }
  }
  return outcome;
}

}  // namespace nnfv::nfswitch
