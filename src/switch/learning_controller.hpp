// LearningController: a reactive per-LSI OpenFlow-style controller.
//
// Figure 1 gives every LSI its own controller ("each LSI is managed by
// its own OpenFlow controller that dynamically inserts the proper rules in
// flow table(s)"). The steering manager covers the proactive case; this
// controller covers the reactive one: on table miss it learns source
// MAC -> port, floods unknown destinations (packet-out on every other
// port) and installs an exact-match rule once the destination is known,
// so subsequent packets forward in the fast path without the controller.
#pragma once

#include <cstdint>
#include <map>

#include "packet/headers.hpp"
#include "switch/lsi.hpp"

namespace nnfv::nfswitch {

class LearningController : public FlowController {
 public:
  /// Installed rules carry this cookie (removable per controller).
  explicit LearningController(Cookie cookie = 0xC0DE,
                              std::uint16_t rule_priority = 10)
      : cookie_(cookie), priority_(rule_priority) {}

  void on_packet_in(Lsi& lsi, PortId in_port,
                    const packet::PacketBuffer& frame) override;

  [[nodiscard]] std::size_t known_stations() const { return stations_.size(); }
  [[nodiscard]] std::uint64_t packet_ins() const { return packet_ins_; }
  [[nodiscard]] std::uint64_t rules_installed() const {
    return rules_installed_;
  }
  [[nodiscard]] std::uint64_t floods() const { return floods_; }

  /// Drops learned state and removes this controller's rules from `lsi`.
  void reset(Lsi& lsi);

 private:
  Cookie cookie_;
  std::uint16_t priority_;
  std::map<packet::MacAddress, PortId> stations_;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t rules_installed_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace nnfv::nfswitch
