// Tuple-space flow classifier: the lookup engine behind FlowTable.
//
// Entries are grouped by their wildcard *mask signature* — the set of
// specified match fields plus the two IP prefix lengths. Every entry in a
// group is an exact match over the same masked fields, so each group is an
// O(1) hash probe on the packet's masked key. Groups are probed in
// descending max-priority order with early exit, which preserves the
// table's documented highest-priority / earliest-added-wins semantics
// while turning the per-packet cost from O(entries) into O(groups).
//
// LSI-0 style classifiers (thousands of per-graph rules sharing one or two
// match shapes) collapse into one or two groups; an adversarial table can
// still create many groups, but never more than distinct match shapes.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "switch/flow_match.hpp"

namespace nnfv::nfswitch {

struct FlowEntry;

/// The canonical per-packet key: every field a FlowMatch can examine,
/// decoded and normalised once per lookup (VLAN: kMatchUntagged when the
/// frame carries no tag, so untagged-match and VID-match unify into exact
/// equality).
struct FlowKeyView {
  PortId in_port = 0;
  std::array<std::uint8_t, 6> eth_src{};
  std::array<std::uint8_t, 6> eth_dst{};
  std::uint16_t eth_type = 0;
  std::uint16_t vlan = FlowMatch::kMatchUntagged;
  bool has_ipv4 = false;
  std::uint32_t ip_src = 0;
  std::uint32_t ip_dst = 0;
  std::uint8_t ip_proto = 0;
  // Tracked separately, mirroring FlowMatch::matches which checks the two
  // L4 ports independently (a hand-built context may set only one).
  bool has_l4_src = false;
  bool has_l4_dst = false;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;

  static FlowKeyView from_context(const FlowContext& ctx);

  bool operator==(const FlowKeyView&) const = default;

  /// Hash over every field — used by the microflow cache.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Which fields a FlowMatch specifies, plus its IP prefix lengths.
struct MaskSignature {
  enum Field : std::uint16_t {
    kInPort = 1 << 0,
    kEthSrc = 1 << 1,
    kEthDst = 1 << 2,
    kEthType = 1 << 3,
    kVlan = 1 << 4,
    kIpSrc = 1 << 5,
    kIpDst = 1 << 6,
    kIpProto = 1 << 7,
    kTpSrc = 1 << 8,
    kTpDst = 1 << 9,
    /// Any L3/L4 field present: the packet must be IPv4 even when the
    /// specified prefixes are /0.
    kNeedsIpv4 = 1 << 10,
    kNeedsL4Src = 1 << 11,
    kNeedsL4Dst = 1 << 12,
  };

  std::uint16_t fields = 0;
  std::uint8_t ip_src_prefix = 0;  ///< meaningful iff kIpSrc
  std::uint8_t ip_dst_prefix = 0;  ///< meaningful iff kIpDst

  static MaskSignature of(const FlowMatch& match);

  bool operator==(const MaskSignature&) const = default;
};

class TupleSpaceClassifier {
 public:
  /// Rebuilds all groups from `entries`, which must be sorted by
  /// (priority desc, id asc) — bucket order inherits it.
  void rebuild(const std::vector<FlowEntry*>& entries);

  /// Best match per the table semantics, or nullptr.
  [[nodiscard]] FlowEntry* match(const FlowKeyView& key) const;

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

 private:
  /// Masked key of one group: the specified fields only, IPs pre-masked.
  struct MaskedKey {
    std::uint64_t h = 0;  ///< precomputed hash over the masked fields
    FlowKeyView k;        ///< unspecified fields left zeroed

    bool operator==(const MaskedKey& o) const { return h == o.h && k == o.k; }
  };
  struct MaskedKeyHash {
    std::size_t operator()(const MaskedKey& key) const noexcept {
      return static_cast<std::size_t>(key.h);
    }
  };

  struct Group {
    MaskSignature signature;
    std::uint16_t max_priority = 0;
    /// Bucket entries keep table order, so bucket.front() is the bucket's
    /// winner (entries in one bucket have *identical* match patterns).
    std::unordered_map<MaskedKey, std::vector<FlowEntry*>, MaskedKeyHash>
        buckets;
  };

  /// Masked key of `match` (entry side). Assumes signature == of(match).
  static MaskedKey entry_key(const FlowMatch& match,
                             const MaskSignature& sig);
  /// Masked key of a packet under `sig`; false when the packet cannot
  /// match the group at all (e.g. non-IP packet in an IP group).
  static bool packet_key(const FlowKeyView& key, const MaskSignature& sig,
                         MaskedKey& out);

  std::vector<Group> groups_;  ///< sorted by max_priority desc
};

}  // namespace nnfv::nfswitch
