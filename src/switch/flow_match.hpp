// OpenFlow-style match: the subset of fields the NF-FG translation needs
// (port, L2, 802.1Q, L3 with prefixes, L4 ports).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "packet/flow_key.hpp"
#include "packet/headers.hpp"

namespace nnfv::nfswitch {

using PortId = std::uint32_t;
inline constexpr PortId kInvalidPort = 0xFFFFFFFF;

/// Everything a lookup sees about one packet: ingress port + decoded fields.
struct FlowContext {
  PortId in_port = kInvalidPort;
  packet::FlowFields fields;
};

/// Host-order mask for an IPv4 prefix length (0 = match-all, >=32 = exact).
/// Shared by FlowMatch::matches and the tuple-space classifier so the two
/// can never disagree on prefix semantics.
inline std::uint32_t ipv4_prefix_mask(std::uint8_t prefix) {
  if (prefix == 0) return 0;
  if (prefix >= 32) return 0xFFFFFFFFu;
  return ~((1u << (32 - prefix)) - 1u);
}

/// VLAN match semantics mirror OpenFlow 1.3: unset = wildcard;
/// kMatchUntagged = packet must carry no tag; a VID matches tagged packets.
struct FlowMatch {
  static constexpr std::uint16_t kMatchUntagged = 0xFFFF;

  std::optional<PortId> in_port;
  std::optional<packet::MacAddress> eth_src;
  std::optional<packet::MacAddress> eth_dst;
  std::optional<std::uint16_t> eth_type;
  std::optional<std::uint16_t> vlan;  ///< VID, or kMatchUntagged
  std::optional<packet::Ipv4Address> ip_src;
  std::uint8_t ip_src_prefix = 32;
  std::optional<packet::Ipv4Address> ip_dst;
  std::uint8_t ip_dst_prefix = 32;
  std::optional<std::uint8_t> ip_proto;
  std::optional<std::uint16_t> tp_src;  ///< transport source port
  std::optional<std::uint16_t> tp_dst;

  [[nodiscard]] bool matches(const FlowContext& ctx) const;

  /// Number of specified fields — a crude specificity measure used by tests.
  [[nodiscard]] int specified_fields() const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const FlowMatch&) const = default;
};

/// Convenience factory: match everything arriving on `port`.
FlowMatch match_in_port(PortId port);

/// Convenience factory: match `port` + 802.1Q VID.
FlowMatch match_port_vlan(PortId port, std::uint16_t vid);

}  // namespace nnfv::nfswitch
