#include "switch/flow_match.hpp"

namespace nnfv::nfswitch {

namespace {

bool prefix_match(packet::Ipv4Address value, packet::Ipv4Address pattern,
                  std::uint8_t prefix) {
  const std::uint32_t mask = ipv4_prefix_mask(prefix);
  return (value.value & mask) == (pattern.value & mask);
}

}  // namespace

bool FlowMatch::matches(const FlowContext& ctx) const {
  if (in_port.has_value() && *in_port != ctx.in_port) return false;

  const packet::EthernetHeader& eth = ctx.fields.eth;
  if (eth_src.has_value() && !(*eth_src == eth.src)) return false;
  if (eth_dst.has_value() && !(*eth_dst == eth.dst)) return false;
  if (eth_type.has_value() && *eth_type != eth.ether_type) return false;

  if (vlan.has_value()) {
    if (*vlan == kMatchUntagged) {
      if (eth.vlan.has_value()) return false;
    } else {
      if (!eth.vlan.has_value() || *eth.vlan != *vlan) return false;
    }
  }

  const bool need_ip = ip_src.has_value() || ip_dst.has_value() ||
                       ip_proto.has_value() || tp_src.has_value() ||
                       tp_dst.has_value();
  if (!need_ip) return true;
  if (!ctx.fields.ipv4.has_value()) return false;
  const packet::Ipv4Header& ip = *ctx.fields.ipv4;

  if (ip_src.has_value() && !prefix_match(ip.src, *ip_src, ip_src_prefix)) {
    return false;
  }
  if (ip_dst.has_value() && !prefix_match(ip.dst, *ip_dst, ip_dst_prefix)) {
    return false;
  }
  if (ip_proto.has_value() && *ip_proto != ip.protocol) return false;

  if (tp_src.has_value()) {
    if (!ctx.fields.l4_src.has_value() || *ctx.fields.l4_src != *tp_src) {
      return false;
    }
  }
  if (tp_dst.has_value()) {
    if (!ctx.fields.l4_dst.has_value() || *ctx.fields.l4_dst != *tp_dst) {
      return false;
    }
  }
  return true;
}

int FlowMatch::specified_fields() const {
  int n = 0;
  n += in_port.has_value();
  n += eth_src.has_value();
  n += eth_dst.has_value();
  n += eth_type.has_value();
  n += vlan.has_value();
  n += ip_src.has_value();
  n += ip_dst.has_value();
  n += ip_proto.has_value();
  n += tp_src.has_value();
  n += tp_dst.has_value();
  return n;
}

std::string FlowMatch::to_string() const {
  std::string out;
  auto add = [&out](const std::string& field) {
    if (!out.empty()) out += ',';
    out += field;
  };
  if (in_port) add("in_port=" + std::to_string(*in_port));
  if (eth_src) add("eth_src=" + eth_src->to_string());
  if (eth_dst) add("eth_dst=" + eth_dst->to_string());
  if (eth_type) add("eth_type=0x" + std::to_string(*eth_type));
  if (vlan) {
    add(*vlan == kMatchUntagged ? std::string("vlan=untagged")
                                : "vlan=" + std::to_string(*vlan));
  }
  if (ip_src) {
    add("ip_src=" + ip_src->to_string() + "/" + std::to_string(ip_src_prefix));
  }
  if (ip_dst) {
    add("ip_dst=" + ip_dst->to_string() + "/" + std::to_string(ip_dst_prefix));
  }
  if (ip_proto) add("ip_proto=" + std::to_string(*ip_proto));
  if (tp_src) add("tp_src=" + std::to_string(*tp_src));
  if (tp_dst) add("tp_dst=" + std::to_string(*tp_dst));
  if (out.empty()) out = "any";
  return out;
}

FlowMatch match_in_port(PortId port) {
  FlowMatch m;
  m.in_port = port;
  return m;
}

FlowMatch match_port_vlan(PortId port, std::uint16_t vid) {
  FlowMatch m;
  m.in_port = port;
  m.vlan = vid;
  return m;
}

}  // namespace nnfv::nfswitch
