#include "switch/lsi.hpp"

#include "exec/priority.hpp"
#include "util/logging.hpp"

namespace nnfv::nfswitch {

Lsi::Lsi(LsiId id, std::string name) : id_(id), name_(std::move(name)) {}

util::Result<PortId> Lsi::add_port(const std::string& name) {
  for (const auto& [pid, port] : ports_) {
    if (port.name == name) {
      return util::already_exists("port '" + name + "' on LSI " + name_);
    }
  }
  const PortId pid = next_port_++;
  ports_[pid] = Port{name, nullptr, nullptr, {}};
  return pid;
}

util::Status Lsi::remove_port(PortId port) {
  if (ports_.erase(port) == 0) {
    return util::not_found("port " + std::to_string(port) + " on LSI " +
                           name_);
  }
  return util::Status::ok();
}

util::Status Lsi::set_port_peer(PortId port, PortPeer peer) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return util::not_found("port " + std::to_string(port) + " on LSI " +
                           name_);
  }
  it->second.peer = std::move(peer);
  return util::Status::ok();
}

util::Status Lsi::set_port_burst_peer(PortId port, BurstPeer peer) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return util::not_found("port " + std::to_string(port) + " on LSI " +
                           name_);
  }
  it->second.burst_peer = std::move(peer);
  return util::Status::ok();
}

bool Lsi::has_port(PortId port) const { return ports_.contains(port); }

util::Result<PortId> Lsi::port_by_name(const std::string& name) const {
  for (const auto& [pid, port] : ports_) {
    if (port.name == name) return pid;
  }
  return util::not_found("port '" + name + "' on LSI " + name_);
}

std::vector<PortId> Lsi::ports() const {
  std::vector<PortId> out;
  out.reserve(ports_.size());
  for (const auto& [pid, port] : ports_) out.push_back(pid);
  return out;
}

const PortStats* Lsi::port_stats(PortId port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : &it->second.stats;
}

void Lsi::receive(PortId port, packet::PacketBuffer&& frame) {
  // Burst-of-1 over the one packet-ingress contract: classification,
  // replication and egress grouping live in receive_burst only.
  packet::PacketBurst single;
  single.push_back(std::move(frame));
  receive_burst(port, std::move(single));
}

void Lsi::receive_burst(PortId port, packet::PacketBurst&& burst) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;  // burst on a deleted port: drop
  it->second.stats.rx_packets += burst.size();
  for (const packet::PacketBuffer& frame : burst) {
    it->second.stats.rx_bytes += frame.size();
  }
  processed_ += burst.size();

  // Survivors grouped per egress port, same-port order preserved.
  packet::BurstGroups<PortId> out;

  for (packet::PacketBuffer& frame : burst) {
    auto fields = packet::extract_flow_fields(frame.data());
    if (!fields) {
      NNFV_LOG(kDebug, "lsi") << name_ << ": unparseable frame dropped";
      continue;
    }
    // Priority split from the fields already decoded for classification;
    // only a rekey-ESP frame costs an extra peek (the SPI).
    if (exec::classify_priority(fields.value(), frame.data()) ==
        exec::FramePriority::kControl) {
      it->second.stats.rx_control += 1;
    } else {
      it->second.stats.rx_bulk += 1;
    }
    FlowContext ctx{port, fields.value()};
    FlowEntry* entry =
        table_.lookup_key(FlowKeyView::from_context(ctx), frame.size());
    if (entry == nullptr) {
      if (controller_ != nullptr) {
        controller_->on_packet_in(*this, port, frame);
      }
      continue;
    }
    ActionOutcome outcome = apply_actions(entry->actions, frame);
    if (outcome.to_controller && controller_ != nullptr) {
      controller_->on_packet_in(*this, port, frame);
    }
    if (outcome.dropped || outcome.outputs.empty()) continue;
    for (std::size_t i = 0; i + 1 < outcome.outputs.size(); ++i) {
      out.add(outcome.outputs[i], frame.clone());
    }
    out.add(outcome.outputs.back(), std::move(frame));
  }
  burst.clear();

  for (auto& [p, group] : out) transmit_burst(p, std::move(group));
}

void Lsi::transmit(PortId port, packet::PacketBuffer&& frame) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  it->second.stats.tx_packets += 1;
  it->second.stats.tx_bytes += frame.size();
  if (it->second.peer) {
    it->second.peer(std::move(frame));
    return;
  }
  // Symmetric fallback: a port wired only for bursts still delivers
  // single frames (controller packet-out, non-burst pipeline).
  if (it->second.burst_peer) {
    packet::PacketBurst single;
    single.push_back(std::move(frame));
    it->second.burst_peer(std::move(single));
    return;
  }
  it->second.stats.tx_no_peer += 1;
}

void Lsi::transmit_burst(PortId port, packet::PacketBurst&& burst) {
  if (burst.empty()) return;
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  Port& p = it->second;
  p.stats.tx_packets += burst.size();
  for (const packet::PacketBuffer& frame : burst) {
    p.stats.tx_bytes += frame.size();
  }
  if (p.burst_peer) {
    p.burst_peer(std::move(burst));
    return;
  }
  if (!p.peer) {
    p.stats.tx_no_peer += burst.size();
    return;
  }
  for (packet::PacketBuffer& frame : burst) p.peer(std::move(frame));
}

}  // namespace nnfv::nfswitch
