// Priority flow table with per-entry statistics — the forwarding state of
// one Logical Switch Instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "switch/flow_action.hpp"
#include "switch/flow_match.hpp"
#include "util/status.hpp"

namespace nnfv::nfswitch {

using FlowEntryId = std::uint64_t;
using Cookie = std::uint64_t;

struct FlowEntryStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct FlowEntry {
  FlowEntryId id = 0;
  std::uint16_t priority = 0;
  FlowMatch match;
  std::vector<FlowAction> actions;
  /// Opaque owner tag; the steering manager sets it to the graph id so all
  /// rules of a graph can be removed together.
  Cookie cookie = 0;
  FlowEntryStats stats;
};

/// Highest-priority-wins lookup; among equal priorities the earliest-added
/// entry wins (OpenFlow leaves this undefined; we pin it for determinism).
class FlowTable {
 public:
  /// Adds an entry and returns its id.
  FlowEntryId add(std::uint16_t priority, FlowMatch match,
                  std::vector<FlowAction> actions, Cookie cookie = 0);

  util::Status remove(FlowEntryId id);

  /// Removes all entries with the given cookie; returns how many.
  std::size_t remove_by_cookie(Cookie cookie);

  /// Returns the matching entry (updating its stats) or nullptr on miss.
  FlowEntry* lookup(const FlowContext& ctx, std::size_t packet_bytes);

  /// Lookup without stats update (diagnostics).
  [[nodiscard]] const FlowEntry* peek(const FlowContext& ctx) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const {
    return entries_;
  }

  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Multi-line human-readable dump (debugging, examples).
  [[nodiscard]] std::string dump() const;

 private:
  // Kept sorted by (priority desc, id asc).
  std::vector<FlowEntry> entries_;
  FlowEntryId next_id_ = 1;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace nnfv::nfswitch
