// Priority flow table with per-entry statistics — the forwarding state of
// one Logical Switch Instance.
//
// Lookup is tiered (see docs/datapath.md):
//   1. a direct-mapped exact-match *microflow cache* keyed on the packet's
//      full decoded fields, invalidated wholesale on any table mutation;
//   2. a tuple-space classifier: one hash probe per distinct match shape,
//      probed in descending max-priority order with early exit.
// Both tiers reproduce the documented linear-scan semantics exactly:
// highest priority wins, earliest-added wins among equals.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/worker_slot.hpp"
#include "switch/flow_action.hpp"
#include "switch/flow_classifier.hpp"
#include "switch/flow_match.hpp"
#include "util/atomics.hpp"
#include "util/status.hpp"

namespace nnfv::nfswitch {

using FlowEntryId = std::uint64_t;
using Cookie = std::uint64_t;

/// Relaxed-atomic counters: several datapath workers bump the same
/// entry's stats concurrently (see docs/datapath.md §6).
struct FlowEntryStats {
  util::RelaxedCounter packets;
  util::RelaxedCounter bytes;
};

/// THE table ordering — priority desc, then earliest-added (lowest id).
/// Single source of truth for add()/remove() binary searches and the
/// classifier's winner selection.
inline bool flow_entry_precedes(std::uint16_t priority_a, FlowEntryId id_a,
                                std::uint16_t priority_b, FlowEntryId id_b) {
  if (priority_a != priority_b) return priority_a > priority_b;
  return id_a < id_b;
}

struct FlowEntry {
  FlowEntryId id = 0;
  std::uint16_t priority = 0;
  FlowMatch match;
  std::vector<FlowAction> actions;
  /// Opaque owner tag; the steering manager sets it to the graph id so all
  /// rules of a graph can be removed together.
  Cookie cookie = 0;
  FlowEntryStats stats;
};

/// Highest-priority-wins lookup; among equal priorities the earliest-added
/// entry wins (OpenFlow leaves this undefined; we pin it for determinism).
class FlowTable {
 public:
  /// Adds an entry and returns its id.
  FlowEntryId add(std::uint16_t priority, FlowMatch match,
                  std::vector<FlowAction> actions, Cookie cookie = 0);

  util::Status remove(FlowEntryId id);

  /// Removes all entries with the given cookie; returns how many.
  std::size_t remove_by_cookie(Cookie cookie);

  /// Returns the matching entry (updating its stats) or nullptr on miss.
  FlowEntry* lookup(const FlowContext& ctx, std::size_t packet_bytes);

  /// Lookup on a pre-extracted key (burst path: the LSI decodes once and
  /// reuses the key for the cache probe and the classifier).
  FlowEntry* lookup_key(const FlowKeyView& key, std::size_t packet_bytes);

  /// Lookup without stats update (diagnostics).
  [[nodiscard]] const FlowEntry* peek(const FlowContext& ctx) const;

  /// O(1) entry access by id (nullptr when absent).
  [[nodiscard]] const FlowEntry* find(FlowEntryId id) const;

  /// Ids of all entries tagged with `cookie`.
  [[nodiscard]] std::vector<FlowEntryId> entries_by_cookie(
      Cookie cookie) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries in match order (priority desc, earliest-added first).
  [[nodiscard]] std::vector<const FlowEntry*> entries() const;

  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  /// Microflow-cache telemetry.
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_lookups() const { return cache_lookups_; }
  /// Distinct match shapes currently in the classifier (diagnostics).
  [[nodiscard]] std::size_t classifier_groups() const;

  /// Multi-line human-readable dump (debugging, examples).
  [[nodiscard]] std::string dump() const;

 private:
  static constexpr std::size_t kCacheSlots = 1024;  // power of two

  struct CacheSlot {
    std::uint64_t generation = 0;  ///< valid iff == generation_
    FlowKeyView key;
    FlowEntry* entry = nullptr;  ///< nullptr = cached miss
  };

  /// Invalidate derived state after any mutation.
  void touch();
  void ensure_classifier() const;
  FlowEntry* classify(const FlowKeyView& key) const;

  // Sorted by (priority desc, id asc). unique_ptr keeps entry addresses
  // stable for the indexes and the cache across vector reshuffles.
  std::vector<std::unique_ptr<FlowEntry>> entries_;
  std::unordered_map<FlowEntryId, FlowEntry*> by_id_;
  std::unordered_map<Cookie, std::vector<FlowEntry*>> by_cookie_;

  // Threading contract (docs/datapath.md §6): mutations (add/remove)
  // happen with the datapath quiesced; lookups run concurrently from
  // worker threads. The lazy classifier rebuild is the one post-mutation
  // step workers themselves trigger, so it is double-check-locked; the
  // generation bump stays the wholesale invalidation broadcast for every
  // worker's microflow cache.
  mutable TupleSpaceClassifier classifier_;
  mutable std::atomic<bool> classifier_dirty_{false};
  mutable std::mutex classifier_mutex_;
  /// Bumped on every mutation; invalidates every cache slot of every
  /// worker at once.
  std::atomic<std::uint64_t> generation_{1};
  /// One direct-mapped microflow cache per worker slot (slot 0 = the
  /// control/inline thread), allocated lazily by its owning thread only.
  mutable std::array<std::unique_ptr<std::array<CacheSlot, kCacheSlots>>,
                     exec::kMaxSlots>
      caches_;

  FlowEntryId next_id_ = 1;
  mutable util::RelaxedCounter misses_;
  util::RelaxedCounter cache_hits_;
  util::RelaxedCounter cache_lookups_;
};

}  // namespace nnfv::nfswitch
