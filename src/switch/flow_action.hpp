// Flow actions: the rewrite/forward operations the traffic-steering manager
// installs (output, VLAN push/pop/set for graph marking, MAC rewrite, drop,
// punt to controller).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/buffer.hpp"
#include "packet/headers.hpp"
#include "switch/flow_match.hpp"

namespace nnfv::nfswitch {

struct FlowAction {
  enum class Type {
    kOutput,      ///< forward out of `port`
    kPushVlan,    ///< add an 802.1Q tag with `vlan`
    kPopVlan,     ///< remove the 802.1Q tag
    kSetVlan,     ///< rewrite the VID of an existing tag (adds if missing)
    kSetEthSrc,   ///< rewrite source MAC
    kSetEthDst,   ///< rewrite destination MAC
    kDrop,        ///< discard (terminates the action list)
    kController,  ///< punt a copy to the LSI's controller
  };

  Type type = Type::kDrop;
  PortId port = kInvalidPort;  ///< for kOutput
  std::uint16_t vlan = 0;      ///< for kPushVlan / kSetVlan
  packet::MacAddress mac;      ///< for kSetEthSrc / kSetEthDst

  static FlowAction output(PortId port) {
    return {Type::kOutput, port, 0, {}};
  }
  static FlowAction push_vlan(std::uint16_t vid) {
    return {Type::kPushVlan, kInvalidPort, vid, {}};
  }
  static FlowAction pop_vlan() { return {Type::kPopVlan, kInvalidPort, 0, {}}; }
  static FlowAction set_vlan(std::uint16_t vid) {
    return {Type::kSetVlan, kInvalidPort, vid, {}};
  }
  static FlowAction set_eth_src(packet::MacAddress mac) {
    return {Type::kSetEthSrc, kInvalidPort, 0, mac};
  }
  static FlowAction set_eth_dst(packet::MacAddress mac) {
    return {Type::kSetEthDst, kInvalidPort, 0, mac};
  }
  static FlowAction drop() { return {Type::kDrop, kInvalidPort, 0, {}}; }
  static FlowAction to_controller() {
    return {Type::kController, kInvalidPort, 0, {}};
  }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const FlowAction&) const = default;
};

/// Result of running an action list over one packet.
struct ActionOutcome {
  /// Egress ports, in action order (a packet may be replicated).
  std::vector<PortId> outputs;
  bool to_controller = false;
  bool dropped = false;
};

/// Applies `actions` to `frame` in order, mutating it (VLAN/MAC rewrites).
/// Output actions record the egress port with the packet state *at that
/// point*; since we return one mutated frame, rewrites that follow an output
/// also affect earlier outputs — the steering manager never generates such
/// lists (rewrites always precede outputs), and apply_actions documents the
/// limitation rather than cloning per output.
ActionOutcome apply_actions(const std::vector<FlowAction>& actions,
                            packet::PacketBuffer& frame);

}  // namespace nnfv::nfswitch
