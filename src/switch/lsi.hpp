// LogicalSwitchInstance (LSI): the per-graph software switch of the
// Universal Node architecture, plus the base LSI-0 that classifies node
// ingress traffic.
//
// An LSI owns named ports; each port's peer is a callback (an NF instance,
// a virtual link to another LSI, or a physical-port model). Forwarding is
// a flow-table lookup followed by action application. Table misses go to
// the LSI's controller, mirroring the per-LSI OpenFlow controller of the
// paper's Figure 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "packet/buffer.hpp"
#include "switch/flow_table.hpp"
#include "util/status.hpp"

namespace nnfv::nfswitch {

using LsiId = std::uint32_t;

class Lsi;

/// Per-LSI control plane: receives table-miss packets and may install rules.
/// Mirrors the "OpenFlow connection" of the compute-node architecture.
class FlowController {
 public:
  virtual ~FlowController() = default;
  virtual void on_packet_in(Lsi& lsi, PortId in_port,
                            const packet::PacketBuffer& frame) = 0;
};

/// Relaxed-atomic counters: datapath workers on different shards bump
/// the same port's stats concurrently (docs/datapath.md §6).
struct PortStats {
  util::RelaxedCounter rx_packets;
  util::RelaxedCounter rx_bytes;
  util::RelaxedCounter tx_packets;
  util::RelaxedCounter tx_bytes;
  util::RelaxedCounter tx_no_peer;  ///< transmits with no peer attached
  /// Ingress priority split (exec/priority.hpp): control = ARP / DHCP /
  /// rekey ESP, bulk = everything else. Fed by receive_burst from the
  /// flow fields it already decodes; overload shedding upstream uses
  /// the same classifier, so these two counters tell which class a
  /// congested port actually carried.
  util::RelaxedCounter rx_control;
  util::RelaxedCounter rx_bulk;
};

class Lsi {
 public:
  /// Receiver for frames leaving the switch through a port.
  using PortPeer = std::function<void(packet::PacketBuffer&&)>;
  /// Burst-capable receiver; preferred by transmit_burst when set.
  using BurstPeer = std::function<void(packet::PacketBurst&&)>;

  Lsi(LsiId id, std::string name);

  [[nodiscard]] LsiId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Creates a port; names must be unique within the LSI.
  util::Result<PortId> add_port(const std::string& name);
  util::Status remove_port(PortId port);

  /// Sets where frames transmitted out of `port` go.
  util::Status set_port_peer(PortId port, PortPeer peer);

  /// Burst fast path for `port`: transmit_burst hands the whole vector to
  /// `peer` in one call instead of one PortPeer call per frame.
  util::Status set_port_burst_peer(PortId port, BurstPeer peer);

  [[nodiscard]] bool has_port(PortId port) const;
  [[nodiscard]] util::Result<PortId> port_by_name(
      const std::string& name) const;
  [[nodiscard]] std::vector<PortId> ports() const;
  [[nodiscard]] const PortStats* port_stats(PortId port) const;

  /// Ingress: a frame arrives on `port`; runs the pipeline synchronously.
  void receive(PortId port, packet::PacketBuffer&& frame);

  /// Burst ingress: classifies every frame, groups survivors per egress
  /// port and transmits each group as one burst. Frames destined for the
  /// same port keep their relative order; cross-port interleaving is not
  /// preserved (documented in docs/datapath.md).
  void receive_burst(PortId port, packet::PacketBurst&& burst);

  /// Egress helper used by controllers and the steering layer (packet-out).
  void transmit(PortId port, packet::PacketBuffer&& frame);

  /// Egress of a whole burst through one port.
  void transmit_burst(PortId port, packet::PacketBurst&& burst);

  FlowTable& flow_table() { return table_; }
  [[nodiscard]] const FlowTable& flow_table() const { return table_; }

  void set_controller(FlowController* controller) { controller_ = controller; }

  [[nodiscard]] std::uint64_t processed_packets() const { return processed_; }

 private:
  struct Port {
    std::string name;
    PortPeer peer;
    BurstPeer burst_peer;
    PortStats stats;
  };

  LsiId id_;
  std::string name_;
  // Port add/remove follows the same quiesce contract as flow-table
  // mutations; during traffic, ports_ is read-only and workers only
  // touch the atomic counters inside each Port.
  std::map<PortId, Port> ports_;
  PortId next_port_ = 1;
  FlowTable table_;
  FlowController* controller_ = nullptr;
  util::RelaxedCounter processed_;
};

}  // namespace nnfv::nfswitch
