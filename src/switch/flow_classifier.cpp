#include "switch/flow_classifier.hpp"

#include <algorithm>

#include "switch/flow_table.hpp"

namespace nnfv::nfswitch {

namespace {

/// Word-wise splitmix-style mixer: one multiply + shift per 64-bit field
/// group keeps the per-lookup hash a handful of cycles.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
  }
};

std::uint64_t hash_view(const FlowKeyView& k) {
  Fnv f;
  std::uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) mac = (mac << 8) | k.eth_src[i];
  f.mix(mac);
  mac = 0;
  for (int i = 0; i < 6; ++i) mac = (mac << 8) | k.eth_dst[i];
  f.mix(mac);
  f.mix(static_cast<std::uint64_t>(k.in_port) << 32 |
        static_cast<std::uint64_t>(k.eth_type) << 16 | k.vlan);
  f.mix(static_cast<std::uint64_t>(k.ip_src) << 32 | k.ip_dst);
  f.mix(static_cast<std::uint64_t>(k.ip_proto) << 40 |
        static_cast<std::uint64_t>(k.l4_src) << 24 |
        static_cast<std::uint64_t>(k.l4_dst) << 8 |
        static_cast<std::uint64_t>(k.has_ipv4) << 2 |
        static_cast<std::uint64_t>(k.has_l4_src) << 1 |
        static_cast<std::uint64_t>(k.has_l4_dst));
  return f.h;
}

/// Earlier in table order == wins; delegates to the table's single
/// ordering definition (flow_entry_precedes).
inline bool beats(const FlowEntry* a, const FlowEntry* b) {
  if (b == nullptr) return true;
  return flow_entry_precedes(a->priority, a->id, b->priority, b->id);
}

}  // namespace

FlowKeyView FlowKeyView::from_context(const FlowContext& ctx) {
  FlowKeyView key;
  key.in_port = ctx.in_port;
  key.eth_src = ctx.fields.eth.src.bytes;
  key.eth_dst = ctx.fields.eth.dst.bytes;
  key.eth_type = ctx.fields.eth.ether_type;
  key.vlan = ctx.fields.eth.vlan.value_or(FlowMatch::kMatchUntagged);
  if (ctx.fields.ipv4.has_value()) {
    key.has_ipv4 = true;
    key.ip_src = ctx.fields.ipv4->src.value;
    key.ip_dst = ctx.fields.ipv4->dst.value;
    key.ip_proto = ctx.fields.ipv4->protocol;
  }
  if (ctx.fields.l4_src.has_value()) {
    key.has_l4_src = true;
    key.l4_src = *ctx.fields.l4_src;
  }
  if (ctx.fields.l4_dst.has_value()) {
    key.has_l4_dst = true;
    key.l4_dst = *ctx.fields.l4_dst;
  }
  return key;
}

std::uint64_t FlowKeyView::hash() const { return hash_view(*this); }

MaskSignature MaskSignature::of(const FlowMatch& match) {
  MaskSignature sig;
  if (match.in_port) sig.fields |= kInPort;
  if (match.eth_src) sig.fields |= kEthSrc;
  if (match.eth_dst) sig.fields |= kEthDst;
  if (match.eth_type) sig.fields |= kEthType;
  if (match.vlan) sig.fields |= kVlan;
  if (match.ip_src) {
    sig.fields |= kIpSrc;
    sig.ip_src_prefix = std::min<std::uint8_t>(match.ip_src_prefix, 32);
  }
  if (match.ip_dst) {
    sig.fields |= kIpDst;
    sig.ip_dst_prefix = std::min<std::uint8_t>(match.ip_dst_prefix, 32);
  }
  if (match.ip_proto) sig.fields |= kIpProto;
  if (match.tp_src) sig.fields |= kTpSrc;
  if (match.tp_dst) sig.fields |= kTpDst;
  if (sig.fields & (kIpSrc | kIpDst | kIpProto | kTpSrc | kTpDst)) {
    sig.fields |= kNeedsIpv4;
  }
  if (sig.fields & kTpSrc) sig.fields |= kNeedsL4Src;
  if (sig.fields & kTpDst) sig.fields |= kNeedsL4Dst;
  return sig;
}

TupleSpaceClassifier::MaskedKey TupleSpaceClassifier::entry_key(
    const FlowMatch& match, const MaskSignature& sig) {
  MaskedKey key;
  if (sig.fields & MaskSignature::kInPort) key.k.in_port = *match.in_port;
  if (sig.fields & MaskSignature::kEthSrc) key.k.eth_src = match.eth_src->bytes;
  if (sig.fields & MaskSignature::kEthDst) key.k.eth_dst = match.eth_dst->bytes;
  if (sig.fields & MaskSignature::kEthType) key.k.eth_type = *match.eth_type;
  if (sig.fields & MaskSignature::kVlan) key.k.vlan = *match.vlan;
  else key.k.vlan = 0;
  if (sig.fields & MaskSignature::kIpSrc) {
    key.k.ip_src = match.ip_src->value & ipv4_prefix_mask(sig.ip_src_prefix);
  }
  if (sig.fields & MaskSignature::kIpDst) {
    key.k.ip_dst = match.ip_dst->value & ipv4_prefix_mask(sig.ip_dst_prefix);
  }
  if (sig.fields & MaskSignature::kIpProto) key.k.ip_proto = *match.ip_proto;
  if (sig.fields & MaskSignature::kTpSrc) key.k.l4_src = *match.tp_src;
  if (sig.fields & MaskSignature::kTpDst) key.k.l4_dst = *match.tp_dst;
  key.h = hash_view(key.k);
  return key;
}

bool TupleSpaceClassifier::packet_key(const FlowKeyView& key,
                                      const MaskSignature& sig,
                                      MaskedKey& out) {
  const std::uint16_t f = sig.fields;
  if ((f & MaskSignature::kNeedsIpv4) && !key.has_ipv4) return false;
  if ((f & MaskSignature::kNeedsL4Src) && !key.has_l4_src) return false;
  if ((f & MaskSignature::kNeedsL4Dst) && !key.has_l4_dst) return false;
  out.k = FlowKeyView{};  // unspecified fields zeroed (vlan sentinel too)
  out.k.vlan = 0;
  if (f & MaskSignature::kInPort) out.k.in_port = key.in_port;
  if (f & MaskSignature::kEthSrc) out.k.eth_src = key.eth_src;
  if (f & MaskSignature::kEthDst) out.k.eth_dst = key.eth_dst;
  if (f & MaskSignature::kEthType) out.k.eth_type = key.eth_type;
  if (f & MaskSignature::kVlan) out.k.vlan = key.vlan;
  if (f & MaskSignature::kIpSrc) {
    out.k.ip_src = key.ip_src & ipv4_prefix_mask(sig.ip_src_prefix);
  }
  if (f & MaskSignature::kIpDst) {
    out.k.ip_dst = key.ip_dst & ipv4_prefix_mask(sig.ip_dst_prefix);
  }
  if (f & MaskSignature::kIpProto) out.k.ip_proto = key.ip_proto;
  if (f & MaskSignature::kTpSrc) out.k.l4_src = key.l4_src;
  if (f & MaskSignature::kTpDst) out.k.l4_dst = key.l4_dst;
  out.h = hash_view(out.k);
  return true;
}

void TupleSpaceClassifier::rebuild(const std::vector<FlowEntry*>& entries) {
  groups_.clear();
  for (FlowEntry* entry : entries) {
    const MaskSignature sig = MaskSignature::of(entry->match);
    Group* group = nullptr;
    for (Group& g : groups_) {
      if (g.signature == sig) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups_.push_back(Group{sig, entry->priority, {}});
      group = &groups_.back();
    }
    group->max_priority = std::max(group->max_priority, entry->priority);
    group->buckets[entry_key(entry->match, sig)].push_back(entry);
  }
  std::stable_sort(groups_.begin(), groups_.end(),
                   [](const Group& a, const Group& b) {
                     return a.max_priority > b.max_priority;
                   });
}

FlowEntry* TupleSpaceClassifier::match(const FlowKeyView& key) const {
  FlowEntry* best = nullptr;
  MaskedKey probe;
  for (const Group& group : groups_) {
    // Groups are priority-sorted: once the best hit outranks every
    // remaining group, stop. Equal-priority groups must still be probed —
    // an earlier-added (lower id) entry may live there.
    if (best != nullptr && group.max_priority < best->priority) break;
    if (!packet_key(key, group.signature, probe)) continue;
    auto it = group.buckets.find(probe);
    if (it == group.buckets.end()) continue;
    FlowEntry* candidate = it->second.front();
    if (beats(candidate, best)) best = candidate;
  }
  return best;
}

}  // namespace nnfv::nfswitch
