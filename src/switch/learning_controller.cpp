#include "switch/learning_controller.hpp"

namespace nnfv::nfswitch {

void LearningController::on_packet_in(Lsi& lsi, PortId in_port,
                                      const packet::PacketBuffer& frame) {
  ++packet_ins_;
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth) return;

  // Learn the talker; re-learn on movement.
  if (!eth->src.is_multicast()) {
    auto [it, inserted] = stations_.try_emplace(eth->src, in_port);
    if (!inserted && it->second != in_port) it->second = in_port;
  }

  auto destination = stations_.find(eth->dst);
  if (destination != stations_.end() && !eth->dst.is_multicast()) {
    // Install the fast-path rule, then packet-out the trigger frame.
    FlowMatch match;
    match.eth_dst = eth->dst;
    lsi.flow_table().add(priority_, match,
                         {FlowAction::output(destination->second)}, cookie_);
    ++rules_installed_;
    lsi.transmit(destination->second, frame.copy());
    return;
  }

  // Unknown/broadcast destination: flood (packet-out on all other ports).
  ++floods_;
  for (PortId port : lsi.ports()) {
    if (port == in_port) continue;
    lsi.transmit(port, frame.clone());
  }
}

void LearningController::reset(Lsi& lsi) {
  stations_.clear();
  lsi.flow_table().remove_by_cookie(cookie_);
}

}  // namespace nnfv::nfswitch
