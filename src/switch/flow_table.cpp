#include "switch/flow_table.hpp"

#include <algorithm>

namespace nnfv::nfswitch {

void FlowTable::touch() {
  // invalidates every microflow-cache slot (of every worker) at once
  generation_.fetch_add(1, std::memory_order_release);
  classifier_dirty_.store(true, std::memory_order_release);
}

void FlowTable::ensure_classifier() const {
  // Mutations only happen with the datapath quiesced, so `dirty` is
  // stable while workers race here: the first one through the mutex
  // rebuilds, everyone else blocks until the release-store below and
  // then sees the fresh classifier.
  if (!classifier_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(classifier_mutex_);
  if (!classifier_dirty_.load(std::memory_order_relaxed)) return;
  std::vector<FlowEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& e : entries_) sorted.push_back(e.get());
  classifier_.rebuild(sorted);
  classifier_dirty_.store(false, std::memory_order_release);
}

FlowEntry* FlowTable::classify(const FlowKeyView& key) const {
  ensure_classifier();
  return classifier_.match(key);
}

FlowEntryId FlowTable::add(std::uint16_t priority, FlowMatch match,
                           std::vector<FlowAction> actions, Cookie cookie) {
  auto entry = std::make_unique<FlowEntry>();
  entry->id = next_id_++;
  entry->priority = priority;
  entry->match = std::move(match);
  entry->actions = std::move(actions);
  entry->cookie = cookie;

  const FlowEntryId id = entry->id;
  FlowEntry* raw = entry.get();
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), std::pair{priority, id},
      [](const std::pair<std::uint16_t, FlowEntryId>& key,
         const std::unique_ptr<FlowEntry>& e) {
        return flow_entry_precedes(key.first, key.second, e->priority, e->id);
      });
  entries_.insert(pos, std::move(entry));
  by_id_.emplace(id, raw);
  by_cookie_[cookie].push_back(raw);
  touch();
  return id;
}

util::Status FlowTable::remove(FlowEntryId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return util::not_found("flow entry " + std::to_string(id));
  }
  FlowEntry* entry = it->second;

  auto& cookie_list = by_cookie_[entry->cookie];
  cookie_list.erase(std::find(cookie_list.begin(), cookie_list.end(), entry));
  if (cookie_list.empty()) by_cookie_.erase(entry->cookie);
  by_id_.erase(it);

  // (priority, id) is unique and entries_ is sorted by it, so the entry's
  // position is a binary search away; erasing shifts only pointers.
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair{entry->priority, entry->id},
      [](const std::unique_ptr<FlowEntry>& e,
         const std::pair<std::uint16_t, FlowEntryId>& key) {
        return flow_entry_precedes(e->priority, e->id, key.first, key.second);
      });
  entries_.erase(pos);
  touch();
  return util::Status::ok();
}

std::size_t FlowTable::remove_by_cookie(Cookie cookie) {
  auto it = by_cookie_.find(cookie);
  if (it == by_cookie_.end()) return 0;
  const std::size_t removed = it->second.size();
  for (FlowEntry* entry : it->second) by_id_.erase(entry->id);
  by_cookie_.erase(it);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [cookie](const std::unique_ptr<FlowEntry>& e) {
                                  return e->cookie == cookie;
                                }),
                 entries_.end());
  touch();
  return removed;
}

FlowEntry* FlowTable::lookup(const FlowContext& ctx,
                             std::size_t packet_bytes) {
  return lookup_key(FlowKeyView::from_context(ctx), packet_bytes);
}

FlowEntry* FlowTable::lookup_key(const FlowKeyView& key,
                                 std::size_t packet_bytes) {
  ++cache_lookups_;
  // Each worker slot owns its cache outright (allocated on first use by
  // the owning thread), so slot probes and fills are unsynchronized.
  auto& cache = caches_[exec::current_worker_slot()];
  if (cache == nullptr) {
    cache = std::make_unique<std::array<CacheSlot, kCacheSlots>>();
  }
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  CacheSlot& slot = (*cache)[key.hash() & (kCacheSlots - 1)];
  FlowEntry* entry = nullptr;
  if (slot.generation == generation && slot.key == key) {
    ++cache_hits_;
    entry = slot.entry;
  } else {
    entry = classify(key);
    slot.generation = generation;
    slot.key = key;
    slot.entry = entry;
  }
  if (entry == nullptr) {
    ++misses_;
    return nullptr;
  }
  entry->stats.packets += 1;
  entry->stats.bytes += packet_bytes;
  return entry;
}

const FlowEntry* FlowTable::peek(const FlowContext& ctx) const {
  return classify(FlowKeyView::from_context(ctx));
}

const FlowEntry* FlowTable::find(FlowEntryId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<FlowEntryId> FlowTable::entries_by_cookie(Cookie cookie) const {
  std::vector<FlowEntryId> out;
  auto it = by_cookie_.find(cookie);
  if (it == by_cookie_.end()) return out;
  out.reserve(it->second.size());
  for (const FlowEntry* entry : it->second) out.push_back(entry->id);
  return out;
}

std::vector<const FlowEntry*> FlowTable::entries() const {
  std::vector<const FlowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

std::size_t FlowTable::classifier_groups() const {
  ensure_classifier();
  return classifier_.group_count();
}

std::string FlowTable::dump() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += "  [" + std::to_string(entry->id) +
           "] prio=" + std::to_string(entry->priority) + " match{" +
           entry->match.to_string() + "} actions{";
    bool first = true;
    for (const FlowAction& action : entry->actions) {
      if (!first) out += ',';
      first = false;
      out += action.to_string();
    }
    out += "} pkts=" + std::to_string(entry->stats.packets) + "\n";
  }
  return out;
}

}  // namespace nnfv::nfswitch
