#include "switch/flow_table.hpp"

#include <algorithm>

namespace nnfv::nfswitch {

FlowEntryId FlowTable::add(std::uint16_t priority, FlowMatch match,
                           std::vector<FlowAction> actions, Cookie cookie) {
  FlowEntry entry;
  entry.id = next_id_++;
  entry.priority = priority;
  entry.match = std::move(match);
  entry.actions = std::move(actions);
  entry.cookie = cookie;

  // Insert before the first entry with strictly lower priority, keeping
  // equal-priority entries in insertion order.
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [priority](const FlowEntry& e) {
                            return e.priority < priority;
                          });
  const FlowEntryId id = entry.id;
  entries_.insert(pos, std::move(entry));
  return id;
}

util::Status FlowTable::remove(FlowEntryId id) {
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [id](const FlowEntry& e) { return e.id == id; });
  if (pos == entries_.end()) {
    return util::not_found("flow entry " + std::to_string(id));
  }
  entries_.erase(pos);
  return util::Status::ok();
}

std::size_t FlowTable::remove_by_cookie(Cookie cookie) {
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [cookie](const FlowEntry& e) {
                                  return e.cookie == cookie;
                                }),
                 entries_.end());
  return before - entries_.size();
}

FlowEntry* FlowTable::lookup(const FlowContext& ctx,
                             std::size_t packet_bytes) {
  for (FlowEntry& entry : entries_) {
    if (entry.match.matches(ctx)) {
      entry.stats.packets += 1;
      entry.stats.bytes += packet_bytes;
      return &entry;
    }
  }
  ++misses_;
  return nullptr;
}

const FlowEntry* FlowTable::peek(const FlowContext& ctx) const {
  for (const FlowEntry& entry : entries_) {
    if (entry.match.matches(ctx)) return &entry;
  }
  return nullptr;
}

std::string FlowTable::dump() const {
  std::string out;
  for (const FlowEntry& entry : entries_) {
    out += "  [" + std::to_string(entry.id) +
           "] prio=" + std::to_string(entry.priority) + " match{" +
           entry.match.to_string() + "} actions{";
    bool first = true;
    for (const FlowAction& action : entry.actions) {
      if (!first) out += ',';
      first = false;
      out += action.to_string();
    }
    out += "} pkts=" + std::to_string(entry.stats.packets) + "\n";
  }
  return out;
}

}  // namespace nnfv::nfswitch
