// Minimal JSON value model, parser and serializer.
//
// Carries the NF-FG wire format (the un-orchestrator exchanges NF-FGs as
// JSON over REST) and REST bodies. Supports the full JSON grammar with
// \uXXXX escapes (BMP + surrogate pairs), nesting-depth and number-range
// checks. Object member order is preserved for stable serialization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace nnfv::json {

class Value;

using Array = std::vector<Value>;

/// Object preserving insertion order (NF-FG readability and test stability).
class Object {
 public:
  Value& operator[](const std::string& key);
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

  [[nodiscard]] auto begin() const { return members_.begin(); }
  [[nodiscard]] auto end() const { return members_.end(); }
  auto begin() { return members_.begin(); }
  auto end() { return members_.end(); }

  void erase(std::string_view key);

 private:
  std::vector<std::pair<std::string, Value>> members_;
};

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON document node. Numbers are stored as double (sufficient for the
/// NF-FG schema: ids, priorities, ports).
class Value {
 public:
  Value() : data_(nullptr) {}
  // NOLINTBEGIN(google-explicit-constructor): literals convert implicitly.
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}
  // NOLINTEND(google-explicit-constructor)

  [[nodiscard]] Type type() const;

  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] double as_number() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(data_);
  }
  Object& as_object() { return std::get<Object>(data_); }

  // -- Safe accessors for decoding ------------------------------------------

  /// Object member lookup; nullptr when not an object or key absent.
  [[nodiscard]] const Value* get(std::string_view key) const;

  /// Member as string with fallback.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = "") const;
  /// Member as number with fallback.
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0.0) const;
  /// Member as bool with fallback.
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  bool operator==(const Value& other) const;

  /// Compact serialization (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indent.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
util::Result<Value> parse(std::string_view text);

/// Escapes `s` as a JSON string literal body (no quotes added).
std::string escape_string(std::string_view s);

}  // namespace nnfv::json
