#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nnfv::json {

using util::invalid_argument;
using util::Result;

// ---------------------------------------------------------------------------
// Object
// ---------------------------------------------------------------------------

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value());
  return members_.back().second;
}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Object::contains(std::string_view key) const {
  return find(key) != nullptr;
}

void Object::erase(std::string_view key) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == key) {
      members_.erase(it);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

const Value* Value::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

std::string Value::get_string(std::string_view key, std::string fallback) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_string()) return fallback;
  return v->as_string();
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->as_number();
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_bool()) return fallback;
  return v->as_bool();
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return as_bool() == other.as_bool();
    case Type::kNumber:
      return as_number() == other.as_number();
    case Type::kString:
      return as_string() == other.as_string();
    case Type::kArray: {
      const Array& a = as_array();
      const Array& b = other.as_array();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
    case Type::kObject: {
      const Object& a = as_object();
      const Object& b = other.as_object();
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        const Value* bv = b.find(k);
        if (bv == nullptr || !(v == *bv)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string escape_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, v.as_number());
      break;
    case Type::kString:
      out += '"';
      out += escape_string(v.as_string());
      out += '"';
      break;
    case Type::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : arr) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump_value(item, out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, val] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += escape_string(k);
        out += "\":";
        if (pretty) out += ' ';
        dump_value(val, out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_value(*this, out, 2, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    Result<Value> v = parse_value(0);
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  util::Status error(std::string msg) const {
    return invalid_argument("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + std::move(msg));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!eof() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (eof()) return error("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        Result<std::string> s = parse_string();
        if (!s) return s.status();
        return Value(std::move(s.value()));
      }
      case 't':
        if (consume_literal("true")) return Value(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        return error("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<Value> parse_object(int depth) {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return error("expected object key");
      Result<std::string> key = parse_string();
      if (!key) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':' after key");
      Result<Value> val = parse_value(depth + 1);
      if (!val) return val;
      obj[key.value()] = std::move(val.value());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(obj));
      return error("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array(int depth) {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      Result<Value> val = parse_value(depth + 1);
      if (!val) return val;
      arr.push_back(std::move(val.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(arr));
      return error("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return error("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (eof()) return error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          Result<std::uint32_t> hi = parse_hex4();
          if (!hi) return hi.status();
          std::uint32_t cp = hi.value();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Expect a low surrogate.
            if (!consume_literal("\\u")) {
              return error("high surrogate not followed by \\u");
            }
            Result<std::uint32_t> lo = parse_hex4();
            if (!lo) return lo.status();
            if (lo.value() < 0xDC00 || lo.value() > 0xDFFF) {
              return error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo.value() - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("unexpected low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return error("invalid escape character");
      }
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (eof()) return error("truncated number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      return error("invalid number");
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return error("digit expected after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        return error("digit expected in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return error("number out of range");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace nnfv::json
