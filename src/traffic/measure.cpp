#include "traffic/measure.hpp"

namespace nnfv::traffic {

MeasurementHarness::MeasurementHarness(sim::Simulator& simulator,
                                       MeasurementConfig config)
    : simulator_(simulator),
      config_(config),
      sink_(simulator, config.warmup, config.warmup + config.duration) {}

MeasurementResult MeasurementHarness::run(UdpSource::Transmit inject) {
  UdpSourceConfig source_config = config_.source_template;
  source_config.payload_bytes = config_.payload_bytes;
  source_config.packets_per_second = config_.offered_pps;
  source_config.start = 0;
  source_config.stop = config_.warmup + config_.duration;

  UdpSource source(simulator_, source_config, std::move(inject));
  source.begin();
  // Run past the window so in-flight packets drain (they no longer count).
  simulator_.run_until(config_.warmup + config_.duration +
                       100 * sim::kMillisecond);

  MeasurementResult result;
  result.goodput_bps = sink_.goodput_bps();
  result.throughput_bps = sink_.throughput_bps();
  result.delivered_packets = sink_.packets();
  result.offered_packets = source.sent_packets();
  result.delivery_ratio =
      source.sent_packets() == 0
          ? 0.0
          : static_cast<double>(sink_.total_packets()) /
                static_cast<double>(source.sent_packets());
  return result;
}

}  // namespace nnfv::traffic
