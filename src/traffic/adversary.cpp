#include "traffic/adversary.hpp"

#include <cassert>
#include <cstring>

namespace nnfv::traffic {

std::size_t EspAdversary::esp_offset(const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  assert(eth && eth->ether_type == packet::kEtherTypeIpv4);
  auto ip = packet::parse_ipv4(frame.data().subspan(eth->wire_size()));
  assert(ip && ip->protocol == packet::kIpProtoEsp);
  return eth->wire_size() + ip->header_size();
}

void EspAdversary::fix_outer_length(packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  auto l3 = frame.data().subspan(eth->wire_size());
  auto ip = packet::parse_ipv4(l3);
  packet::Ipv4Header hdr = *ip;
  hdr.total_length = static_cast<std::uint16_t>(l3.size());
  packet::write_ipv4(hdr, l3.subspan(0, hdr.header_size()));
}

packet::PacketBurst EspAdversary::replay_flood(
    const packet::PacketBuffer& frame, std::size_t copies) {
  packet::PacketBurst burst;
  burst.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    burst.push_back(frame.copy());
  }
  counters_.replayed += copies;
  return burst;
}

packet::PacketBuffer EspAdversary::corrupt_ciphertext(
    const packet::PacketBuffer& frame, std::size_t icv_size) {
  packet::PacketBuffer out = frame.copy();
  const std::size_t lo = esp_offset(frame) + packet::kEspHeaderSize;
  const std::size_t hi = out.size() - icv_size;  // exclusive
  assert(hi > lo);
  const std::size_t pos = rng_.uniform(lo, hi - 1);
  out[pos] ^= static_cast<std::uint8_t>(1U << rng_.uniform(0, 7));
  ++counters_.ciphertext_corrupted;
  return out;
}

packet::PacketBuffer EspAdversary::corrupt_icv(
    const packet::PacketBuffer& frame, std::size_t icv_size) {
  packet::PacketBuffer out = frame.copy();
  assert(out.size() > icv_size);
  const std::size_t pos =
      rng_.uniform(out.size() - icv_size, out.size() - 1);
  out[pos] ^= static_cast<std::uint8_t>(1U << rng_.uniform(0, 7));
  ++counters_.icv_corrupted;
  return out;
}

packet::PacketBuffer EspAdversary::truncate_esp(
    const packet::PacketBuffer& frame, std::size_t esp_bytes) {
  packet::PacketBuffer out = frame.copy();
  const std::size_t offset = esp_offset(frame);
  assert(offset + esp_bytes <= out.size());
  out.trim(offset + esp_bytes);
  fix_outer_length(out);
  ++counters_.truncated;
  return out;
}

packet::PacketBurst EspAdversary::truncation_sweep(
    const packet::PacketBuffer& frame, std::size_t iv_size) {
  const std::size_t esp_total = frame.size() - esp_offset(frame);
  const std::size_t cuts[] = {
      0,                                       // no ESP area at all
      packet::kEspHeaderSize / 2,              // half an ESP header
      packet::kEspHeaderSize,                  // header, nothing after
      packet::kEspHeaderSize + iv_size / 2,    // mid-IV
      esp_total - 1,                           // one byte short of valid
  };
  packet::PacketBurst burst;
  for (std::size_t cut : cuts) {
    if (cut >= esp_total) continue;  // tiny frames: skip degenerate cuts
    burst.push_back(truncate_esp(frame, cut));
  }
  return burst;
}

packet::PacketBuffer EspAdversary::garbage_esp(
    const packet::PacketBuffer& prototype, std::size_t esp_bytes) {
  const std::size_t offset = esp_offset(prototype);
  packet::PacketBuffer out = packet::PacketBuffer::copy_of(
      prototype.data().subspan(0, std::min(offset, prototype.size())));
  auto area = out.push_back(esp_bytes);
  const auto junk = rng_.bytes(esp_bytes);
  std::memcpy(area.data(), junk.data(), esp_bytes);
  fix_outer_length(out);
  ++counters_.garbage;
  return out;
}

}  // namespace nnfv::traffic
