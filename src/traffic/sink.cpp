#include "traffic/sink.hpp"

#include "packet/flow_key.hpp"
#include "packet/headers.hpp"

namespace nnfv::traffic {

ThroughputSink::ThroughputSink(sim::Simulator& simulator,
                               sim::SimTime window_start,
                               sim::SimTime window_end)
    : simulator_(simulator),
      window_start_(window_start),
      window_end_(window_end) {}

void ThroughputSink::receive(const packet::PacketBuffer& frame) {
  ++total_packets_;
  const sim::SimTime now = simulator_.now();
  if (now < window_start_ || now >= window_end_) return;
  ++packets_;
  bytes_ += frame.size();

  auto fields = packet::extract_flow_fields(frame.data());
  if (fields && fields->ipv4.has_value() &&
      fields->ipv4->protocol == packet::kIpProtoUdp) {
    const std::size_t udp_off =
        fields->eth.wire_size() + fields->ipv4->header_size();
    auto udp = packet::parse_udp(frame.data().subspan(udp_off));
    if (udp && udp->length >= packet::kUdpHeaderSize) {
      payload_bytes_ += udp->length - packet::kUdpHeaderSize;
    }
  }
}

double ThroughputSink::throughput_bps() const {
  const sim::SimTime window = window_end_ - window_start_;
  if (window <= 0) return 0.0;
  return static_cast<double>(bytes_) * 8.0 * 1e9 /
         static_cast<double>(window);
}

double ThroughputSink::goodput_bps() const {
  const sim::SimTime window = window_end_ - window_start_;
  if (window <= 0) return 0.0;
  return static_cast<double>(payload_bytes_) * 8.0 * 1e9 /
         static_cast<double>(window);
}

}  // namespace nnfv::traffic
