// EspAdversary: fault injection against the ESP ("black") side of an
// IPsec tunnel endpoint.
//
// The generators here manufacture the traffic a tunnel endpoint meets in
// the wild but a well-behaved peer never sends: replayed ciphertext,
// frames with flipped payload or ICV bits (auth-failure storms),
// truncations at every parsing boundary, and outright garbage that is
// ESP only by IP protocol number. All of them start from — or imitate —
// a genuine captured frame, so they pass the outer Ethernet/IPv4 checks
// and exercise the endpoint's ESP layer itself, where the hardening
// lives.
//
// Every generator is deterministic (seeded Rng) and counts what it
// emitted, so scenario tests can assert the exact drop accounting:
// frames produced here must show up in IpsecStats as auth_failures /
// replay_drops / malformed — never as decapsulated output, and never as
// a crash or sanitizer report.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/buffer.hpp"
#include "packet/headers.hpp"
#include "util/rng.hpp"

namespace nnfv::traffic {

/// Per-kind production counters (how many frames each generator built).
struct AdversaryCounters {
  std::uint64_t replayed = 0;
  std::uint64_t ciphertext_corrupted = 0;
  std::uint64_t icv_corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t garbage = 0;

  [[nodiscard]] std::uint64_t total() const {
    return replayed + ciphertext_corrupted + icv_corrupted + truncated +
           garbage;
  }
};

class EspAdversary {
 public:
  explicit EspAdversary(std::uint64_t seed) : rng_(seed) {}

  /// Replay flood: `copies` verbatim duplicates of a captured ESP frame.
  /// Delivered after the original, every copy must die in the replay
  /// window (replay_drops); delivered before it, exactly one wins.
  packet::PacketBurst replay_flood(const packet::PacketBuffer& frame,
                                   std::size_t copies);

  /// Flips one random bit inside the ESP payload (past SPI/sequence,
  /// before the ICV). The tag no longer matches: auth_failures.
  packet::PacketBuffer corrupt_ciphertext(const packet::PacketBuffer& frame,
                                          std::size_t icv_size);

  /// Flips one random bit inside the trailing ICV itself: auth_failures.
  packet::PacketBuffer corrupt_icv(const packet::PacketBuffer& frame,
                                   std::size_t icv_size);

  /// Cuts the frame to `esp_bytes` of ESP area and rewrites the outer
  /// IPv4 total_length (checksum refreshed) so the truncation is
  /// internally consistent — the parser must reject it on ESP grounds
  /// (malformed), not by an outer-header accident.
  packet::PacketBuffer truncate_esp(const packet::PacketBuffer& frame,
                                    std::size_t esp_bytes);

  /// Truncations at every ESP parsing boundary of a real frame: empty
  /// area, half an ESP header, header only, mid-IV, one byte short of
  /// the full frame. Every output must be a counted `malformed` drop.
  packet::PacketBurst truncation_sweep(const packet::PacketBuffer& frame,
                                       std::size_t iv_size);

  /// A well-formed Eth + IPv4(proto 50) frame around `esp_bytes` of
  /// random bytes — the SPI (when >= 4 bytes survive) is random too, so
  /// it almost surely misses the SAD (no_sa) or, at matching sizes,
  /// fails authentication. Never output, never a crash.
  packet::PacketBuffer garbage_esp(const packet::PacketBuffer& prototype,
                                   std::size_t esp_bytes);

  [[nodiscard]] const AdversaryCounters& counters() const {
    return counters_;
  }

 private:
  /// Offset of the ESP area within `frame` (outer Eth + IPv4 headers);
  /// the frame must be a valid ESP-in-IPv4 capture.
  static std::size_t esp_offset(const packet::PacketBuffer& frame);

  /// Rewrites the outer IPv4 total_length + checksum after a resize.
  static void fix_outer_length(packet::PacketBuffer& frame);

  util::Rng rng_;
  AdversaryCounters counters_;
};

}  // namespace nnfv::traffic
