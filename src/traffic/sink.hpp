// ThroughputSink: the iPerf-server stand-in — counts delivered traffic
// inside a measurement window and reports rates.
#pragma once

#include <cstdint>

#include "packet/buffer.hpp"
#include "sim/simulator.hpp"

namespace nnfv::traffic {

class ThroughputSink {
 public:
  /// Only packets with timestamp in [window_start, window_end) count.
  ThroughputSink(sim::Simulator& simulator, sim::SimTime window_start,
                 sim::SimTime window_end);

  /// Delivery entry point; wire as a port peer / egress callback.
  void receive(const packet::PacketBuffer& frame);

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  /// UDP payload bytes (goodput accounting); non-UDP frames contribute 0.
  [[nodiscard]] std::uint64_t payload_bytes() const { return payload_bytes_; }

  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }

  /// L2 throughput over the window, bits/second.
  [[nodiscard]] double throughput_bps() const;
  /// UDP goodput over the window, bits/second — what iPerf reports.
  [[nodiscard]] double goodput_bps() const;

 private:
  sim::Simulator& simulator_;
  sim::SimTime window_start_;
  sim::SimTime window_end_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
};

}  // namespace nnfv::traffic
