// UdpSource: the iPerf-client stand-in.
//
// Generates a constant-bit-rate UDP stream (optionally Poisson) into a
// callback — usually a physical port of the node. Saturation measurements
// offer a rate well above the expected capacity and read the sink rate, the
// same methodology as "maximum throughput measured using iPerf" (paper §3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "packet/builder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace nnfv::traffic {

struct UdpSourceConfig {
  packet::MacAddress eth_src = packet::MacAddress::from_id(0xA0);
  packet::MacAddress eth_dst = packet::MacAddress::from_id(0xA1);
  std::optional<std::uint16_t> vlan;
  packet::Ipv4Address ip_src{0x0A000001};  // 10.0.0.1
  packet::Ipv4Address ip_dst{0x0A000002};  // 10.0.0.2
  std::uint16_t src_port = 40000;
  std::uint16_t dst_port = 5001;  // iperf default
  std::size_t payload_bytes = 1408;
  double packets_per_second = 100000.0;
  bool poisson = false;           ///< exponential inter-arrivals when true
  /// Frames emitted per simulator event. The offered rate stays
  /// packets_per_second; bursts of N fire every N inter-packet gaps and,
  /// when a burst transmit callback is set, enter the node as one vector.
  std::size_t burst_size = 1;
  sim::SimTime start = 0;
  sim::SimTime stop = 10 * sim::kSecond;
  std::uint64_t seed = 42;
  /// Number of distinct flows this source cycles through. Successive
  /// frames rotate the UDP source port over [src_port, src_port +
  /// flow_count), so an RSS-sharded datapath spreads the stream across
  /// workers instead of pinning every frame (same fixed 5-tuple) to one.
  /// 1 keeps the historic single-flow behaviour.
  std::size_t flow_count = 1;
};

class UdpSource {
 public:
  using Transmit = std::function<void(packet::PacketBuffer&&)>;
  using TransmitBurst = std::function<void(packet::PacketBurst&&)>;

  UdpSource(sim::Simulator& simulator, UdpSourceConfig config, Transmit tx);

  /// When set and burst_size > 1, bursts leave through this instead of
  /// one Transmit call per frame.
  void set_burst_transmit(TransmitBurst tx) { burst_tx_ = std::move(tx); }

  /// Schedules the first packet; call once before running the simulator.
  void begin();

  [[nodiscard]] std::uint64_t sent_packets() const { return sent_; }
  [[nodiscard]] std::uint64_t sent_bytes() const { return sent_bytes_; }
  /// The seed actually driving this source's RNG: config.seed uniquified
  /// per instance, so several sources built from one default config no
  /// longer share identical payloads and Poisson gap sequences.
  [[nodiscard]] std::uint64_t effective_seed() const {
    return effective_seed_;
  }

 private:
  void send_one();
  /// Builds the next frame, rebuilding into `reuse`'s pooled segment
  /// when one is supplied (the burst path pre-allocates per burst).
  [[nodiscard]] packet::PacketBuffer build_frame(
      packet::PacketBuffer&& reuse = packet::PacketBuffer());
  [[nodiscard]] sim::SimTime next_gap();

  sim::Simulator& simulator_;
  UdpSourceConfig config_;
  Transmit tx_;
  TransmitBurst burst_tx_;
  std::uint64_t effective_seed_;
  util::Rng rng_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t sent_ = 0;
  std::uint64_t sent_bytes_ = 0;
};

}  // namespace nnfv::traffic
