// Measurement harness: saturating max-throughput runs (the Table 1
// methodology) packaged as one call.
#pragma once

#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"

namespace nnfv::traffic {

struct MeasurementConfig {
  std::size_t payload_bytes = 1408;
  /// Offered load; choose well above capacity for saturation.
  double offered_pps = 300000.0;
  sim::SimTime warmup = 200 * sim::kMillisecond;
  sim::SimTime duration = 2 * sim::kSecond;  ///< measured window length
  UdpSourceConfig source_template;           ///< addressing etc.
};

struct MeasurementResult {
  double goodput_bps = 0.0;
  double throughput_bps = 0.0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t offered_packets = 0;
  /// Fraction of offered packets delivered inside the whole run.
  double delivery_ratio = 0.0;
};

/// Runs a saturation measurement on an arbitrary datapath:
/// `inject` receives source frames; the caller must arrange for processed
/// frames to reach `sink_hook` (returned sink) — typically by wiring a node
/// egress port to it before calling.
class MeasurementHarness {
 public:
  MeasurementHarness(sim::Simulator& simulator, MeasurementConfig config);

  /// The sink to wire to the egress side.
  ThroughputSink& sink() { return sink_; }

  /// Starts the source into `inject` and runs the simulator to the end of
  /// the measurement window (+ drain margin). Returns the result.
  MeasurementResult run(UdpSource::Transmit inject);

 private:
  sim::Simulator& simulator_;
  MeasurementConfig config_;
  ThroughputSink sink_;
};

}  // namespace nnfv::traffic
