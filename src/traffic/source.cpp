#include "traffic/source.hpp"

#include <atomic>
#include <cmath>
#include <utility>

#include "util/byteorder.hpp"

namespace nnfv::traffic {

namespace {

/// Uniquifies the configured seed per constructed source. Every source
/// used to default to seed 42, so a fleet built from one config emitted
/// identical payloads and identical Poisson gap sequences — correlated
/// "independent" streams. The first source keeps the configured seed
/// exactly (single-source runs reproduce historic traces); later ones
/// get a golden-ratio stride, deterministic in construction order.
std::uint64_t uniquify_seed(std::uint64_t seed) {
  static std::atomic<std::uint64_t> instance{0};
  const std::uint64_t n = instance.fetch_add(1, std::memory_order_relaxed);
  return seed + n * 0x9E3779B97F4A7C15ULL;
}

}  // namespace

UdpSource::UdpSource(sim::Simulator& simulator, UdpSourceConfig config,
                     Transmit tx)
    : simulator_(simulator),
      config_(config),
      tx_(std::move(tx)),
      effective_seed_(uniquify_seed(config.seed)),
      rng_(effective_seed_),
      payload_(rng_.bytes(config.payload_bytes)) {
  if (payload_.size() < 8) payload_.resize(8);
}

void UdpSource::begin() {
  simulator_.schedule_at(config_.start, [this]() { send_one(); });
}

sim::SimTime UdpSource::next_gap() {
  const double mean_gap_ns = 1e9 / config_.packets_per_second;
  if (!config_.poisson) {
    return static_cast<sim::SimTime>(std::llround(mean_gap_ns));
  }
  const double gap = rng_.exponential(1.0 / mean_gap_ns);
  return std::max<sim::SimTime>(1, static_cast<sim::SimTime>(gap));
}

packet::PacketBuffer UdpSource::build_frame(packet::PacketBuffer&& reuse) {
  // Stamp a sequence number into the payload (iperf-style).
  util::store_be64(payload_.data(), sent_);

  packet::UdpFrameSpec spec;
  spec.eth_src = config_.eth_src;
  spec.eth_dst = config_.eth_dst;
  spec.vlan = config_.vlan;
  spec.ip_src = config_.ip_src;
  spec.ip_dst = config_.ip_dst;
  spec.src_port = config_.src_port;
  if (config_.flow_count > 1) {
    // Rotate the source port round-robin across the flow set; each
    // distinct 5-tuple lands on its own RSS shard.
    spec.src_port = static_cast<std::uint16_t>(
        config_.src_port + sent_ % config_.flow_count);
  }
  spec.dst_port = config_.dst_port;
  spec.payload = payload_;
  return packet::build_udp_frame(spec, std::move(reuse));
}

void UdpSource::send_one() {
  if (simulator_.now() >= config_.stop) return;

  std::size_t n = std::max<std::size_t>(1, config_.burst_size);
  // Cap the burst by the credit remaining before stop, so bursting never
  // overshoots the configured offered load (a burst of N stands in for
  // the N per-packet sends that would have fit before stop).
  if (config_.packets_per_second > 0.0) {
    const double gap_ns = 1e9 / config_.packets_per_second;
    const double remaining =
        static_cast<double>(config_.stop - simulator_.now());
    const auto credit =
        static_cast<std::size_t>(std::ceil(remaining / gap_ns));
    n = std::min(n, std::max<std::size_t>(1, credit));
  }
  if (n == 1 || !burst_tx_) {
    for (std::size_t i = 0; i < n; ++i) {
      packet::PacketBuffer frame = build_frame();
      ++sent_;
      sent_bytes_ += frame.size();
      tx_(std::move(frame));
    }
  } else {
    // One pool transaction for the whole burst, then in-place builds.
    packet::PacketBurst burst = packet::PacketBuffer::alloc_burst(n);
    for (packet::PacketBuffer& frame : burst) {
      frame = build_frame(std::move(frame));
      ++sent_;
      sent_bytes_ += frame.size();
    }
    burst_tx_(std::move(burst));
  }

  sim::SimTime gap = 0;
  for (std::size_t i = 0; i < n; ++i) gap += next_gap();
  simulator_.schedule(gap, [this]() { send_one(); });
}

}  // namespace nnfv::traffic
