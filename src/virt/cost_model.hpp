// Per-backend datapath cost models.
//
// This is the calibrated substitute for the paper's physical CPE (see
// DESIGN.md §2). An NF's per-packet service time is
//
//   T(bytes) = path_fixed(backend) + nf_fixed
//            + bytes * (nf_per_byte * cpu_factor(backend)
//                       + copy_per_byte(backend))
//
// * path_fixed: cost of moving one packet into/out of the execution
//   environment (kernel path for native/Docker; virtio + VM exits for KVM).
// * copy_per_byte: extra copies crossing the hypervisor boundary.
// * cpu_factor: slowdown of the NF's own work (crypto) when it runs in
//   user space inside a guest instead of the host kernel.
// * nf_fixed / nf_per_byte describe the function itself (NfComputeProfile),
//   independent of where it runs — this is exactly the paper's observation
//   that the same Strongswan code performs differently per flavor.
//
// Calibration (documented in EXPERIMENTS.md): nf profile "ipsec-esp" is set
// so the *native* flavor reproduces Table 1's 1094 Mbps on a 1450-byte
// frame; VM constants are structural (exit + copy costs), not fitted to the
// paper's VM row — landing near 796 Mbps is then a model prediction.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "virt/backend.hpp"

namespace nnfv::virt {

/// Intrinsic per-packet work of a network function, independent of backend.
struct NfComputeProfile {
  sim::SimTime fixed_ns = 0;  ///< per-packet bookkeeping (SA lookup, ...)
  double per_byte_ns = 0.0;   ///< per-byte work (crypto, copies inside NF)
};

/// Well-known profiles used by the benches/examples.
NfComputeProfile profile_forwarding();  ///< bridge/firewall-like, ~O(1)
NfComputeProfile profile_nat();
NfComputeProfile profile_ipsec_esp();   ///< AES-CBC + HMAC-SHA256 per byte

/// Execution-environment constants.
struct BackendCost {
  sim::SimTime path_fixed_ns = 0;
  double copy_per_byte_ns = 0.0;
  double cpu_factor = 1.0;
  sim::SimTime boot_ns = 0;        ///< create -> running
  sim::SimTime config_ns = 0;      ///< apply one configuration update
  sim::SimTime teardown_ns = 0;
};

/// Default constants for each backend (see header comment for meaning).
BackendCost backend_cost(BackendKind kind);

/// Full service-time model for one NF instance on one backend.
class CostModel {
 public:
  CostModel(BackendKind kind, NfComputeProfile profile)
      : kind_(kind), backend_(backend_cost(kind)), profile_(profile) {}

  [[nodiscard]] BackendKind kind() const { return kind_; }
  [[nodiscard]] const BackendCost& backend() const { return backend_; }
  [[nodiscard]] const NfComputeProfile& profile() const { return profile_; }

  /// Per-packet service time for a frame of `bytes`.
  [[nodiscard]] sim::SimTime service_time(std::size_t bytes) const;

  /// Saturation packet rate for a fixed frame size (1/T), packets/s.
  [[nodiscard]] double saturation_pps(std::size_t bytes) const;

 private:
  BackendKind kind_;
  BackendCost backend_;
  NfComputeProfile profile_;
};

}  // namespace nnfv::virt
