// Virtualization backend taxonomy: the execution technologies a Universal
// Node can host (paper Figure 1: VM/libvirt, Docker, DPDK process, native).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace nnfv::virt {

enum class BackendKind {
  kVm,      ///< full VM under KVM/QEMU via a libvirt-style driver
  kDocker,  ///< container sharing the host kernel
  kDpdk,    ///< user-space poll-mode DPDK process
  kNative,  ///< native network function already present in the CPE OS
};

inline constexpr BackendKind kAllBackends[] = {
    BackendKind::kVm, BackendKind::kDocker, BackendKind::kDpdk,
    BackendKind::kNative};

std::string_view backend_name(BackendKind kind);
std::optional<BackendKind> backend_from_name(std::string_view name);

}  // namespace nnfv::virt
