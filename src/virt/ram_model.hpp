// Runtime RAM accounting per NF instance and per node.
//
// Table 1's RAM column is "the amount of RAM allocated at runtime" for the
// whole flavor. We model it as
//
//   ram(instance) = backend overhead + NF working set
//
// where the overhead is the guest OS + hypervisor for a VM, the container
// runtime slice for Docker, and zero for a native function (the binary is
// already part of the CPE OS).
#pragma once

#include <cstdint>

#include "virt/backend.hpp"

namespace nnfv::virt {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;

/// Memory demands intrinsic to a network function.
struct NfMemoryProfile {
  std::uint64_t working_set_bytes = 0;   ///< RSS of the function itself
  std::uint64_t per_flow_bytes = 0;      ///< conntrack/SA state per flow
  /// Marginal cost of one extra isolated internal path (shared NNFs):
  /// tunnel/chain state, not a whole new process.
  std::uint64_t per_context_bytes = 512 * 1024;
};

/// Per-instance backend overhead added on top of the NF working set.
std::uint64_t backend_ram_overhead(BackendKind kind);

/// Total runtime RAM of one instance with `flows` active flows.
std::uint64_t instance_ram(BackendKind kind, const NfMemoryProfile& profile,
                           std::uint64_t flows = 0);

/// Node-level RAM ledger used by the resource manager.
class RamLedger {
 public:
  explicit RamLedger(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t available() const { return capacity_ - used_; }

  /// Reserves `bytes`; false when that would exceed capacity.
  bool reserve(std::uint64_t bytes);
  /// Releases a previous reservation (clamped at zero).
  void release(std::uint64_t bytes);

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
};

}  // namespace nnfv::virt
