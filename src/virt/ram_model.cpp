#include "virt/ram_model.hpp"

namespace nnfv::virt {

std::uint64_t backend_ram_overhead(BackendKind kind) {
  switch (kind) {
    case BackendKind::kNative:
      // The function is part of the CPE OS; only its own working set counts.
      return 0;
    case BackendKind::kDocker:
      // containerd shim + per-container runtime slice + image page cache.
      // Calibrated from Table 1: 24.2 MB total - 19.4 MB working set.
      return 4 * kMiB + 800 * kKiB;
    case BackendKind::kVm:
      // Guest kernel + minimal userland + QEMU device model.
      // Calibrated from Table 1: 390.6 MB total - 19.4 MB working set.
      return 371 * kMiB + 200 * kKiB;
    case BackendKind::kDpdk:
      // Hugepage pools dominate.
      return 64 * kMiB;
  }
  return 0;
}

std::uint64_t instance_ram(BackendKind kind, const NfMemoryProfile& profile,
                           std::uint64_t flows) {
  return backend_ram_overhead(kind) + profile.working_set_bytes +
         flows * profile.per_flow_bytes;
}

bool RamLedger::reserve(std::uint64_t bytes) {
  if (bytes > available()) return false;
  used_ += bytes;
  return true;
}

void RamLedger::release(std::uint64_t bytes) {
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

}  // namespace nnfv::virt
