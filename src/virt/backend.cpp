#include "virt/backend.hpp"

namespace nnfv::virt {

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kVm:
      return "vm";
    case BackendKind::kDocker:
      return "docker";
    case BackendKind::kDpdk:
      return "dpdk";
    case BackendKind::kNative:
      return "native";
  }
  return "unknown";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  if (name == "vm" || name == "kvm" || name == "qemu" || name == "libvirt") {
    return BackendKind::kVm;
  }
  if (name == "docker" || name == "container") return BackendKind::kDocker;
  if (name == "dpdk") return BackendKind::kDpdk;
  if (name == "native" || name == "nnf") return BackendKind::kNative;
  return std::nullopt;
}

}  // namespace nnfv::virt
