#include "virt/cost_model.hpp"

#include <cmath>

namespace nnfv::virt {

NfComputeProfile profile_forwarding() { return {300, 0.05}; }

NfComputeProfile profile_nat() { return {450, 0.08}; }

NfComputeProfile profile_ipsec_esp() {
  // Calibrated so the native flavor of the IPsec endpoint saturates at
  // ~1094 Mbps of UDP goodput with 1408-byte datagrams (Table 1):
  //   T_native(1450) = 850 + 1000 + 1450 * 5.83 = 10304 ns
  //   goodput = 1408 B * 8 / 10.304 us = 1093.2 Mbps
  return {1000, 5.83};
}

BackendCost backend_cost(BackendKind kind) {
  switch (kind) {
    case BackendKind::kNative:
      // Host kernel path: no hypervisor, no extra copies.
      return {.path_fixed_ns = 850,
              .copy_per_byte_ns = 0.0,
              .cpu_factor = 1.0,
              .boot_ns = 50 * sim::kMillisecond,
              .config_ns = 20 * sim::kMillisecond,
              .teardown_ns = 30 * sim::kMillisecond};
    case BackendKind::kDocker:
      // Same host kernel path as native (the paper: "comparable
      // performance, since both process packets in the host kernel
      // space"); slower lifecycle (image setup, containerd round trips).
      return {.path_fixed_ns = 850,
              .copy_per_byte_ns = 0.0,
              .cpu_factor = 1.0,
              .boot_ns = 400 * sim::kMillisecond,
              .config_ns = 60 * sim::kMillisecond,
              .teardown_ns = 150 * sim::kMillisecond};
    case BackendKind::kVm:
      // virtio-net: VM exits + host<->guest copies, and the NF's own work
      // runs in user space in the guest ("IPsec functionalities executing
      // in user space ... within the hypervisor" — paper §3).
      return {.path_fixed_ns = 3350,
              .copy_per_byte_ns = 0.5,
              .cpu_factor = 1.075,
              .boot_ns = 9 * sim::kSecond,
              .config_ns = 250 * sim::kMillisecond,
              .teardown_ns = 2 * sim::kSecond};
    case BackendKind::kDpdk:
      // Poll-mode user-space: tiny per-packet path, one copy at the vswitch
      // boundary.
      return {.path_fixed_ns = 250,
              .copy_per_byte_ns = 0.3,
              .cpu_factor = 1.0,
              .boot_ns = 700 * sim::kMillisecond,
              .config_ns = 50 * sim::kMillisecond,
              .teardown_ns = 200 * sim::kMillisecond};
  }
  return {};
}

sim::SimTime CostModel::service_time(std::size_t bytes) const {
  const double per_byte =
      profile_.per_byte_ns * backend_.cpu_factor + backend_.copy_per_byte_ns;
  const double t = static_cast<double>(backend_.path_fixed_ns) +
                   static_cast<double>(profile_.fixed_ns) +
                   static_cast<double>(bytes) * per_byte;
  return static_cast<sim::SimTime>(std::llround(t));
}

double CostModel::saturation_pps(std::size_t bytes) const {
  const sim::SimTime t = service_time(bytes);
  if (t <= 0) return 0.0;
  return 1e9 / static_cast<double>(t);
}

}  // namespace nnfv::virt
