#include "virt/image_store.hpp"

#include "virt/ram_model.hpp"  // kMiB

namespace nnfv::virt {

using util::Result;
using util::Status;

std::uint64_t Image::total_size() const {
  std::uint64_t total = 0;
  for (const ImageLayer& layer : layers) total += layer.size_bytes;
  return total;
}

Status ImageStore::register_image(Image image) {
  if (image.name.empty()) return util::invalid_argument("image name empty");
  if (images_.contains(image.name)) {
    return util::already_exists("image '" + image.name + "'");
  }
  images_[image.name] = std::move(image);
  return Status::ok();
}

Result<Image> ImageStore::find(const std::string& name) const {
  auto it = images_.find(name);
  if (it == images_.end()) return util::not_found("image '" + name + "'");
  return it->second;
}

bool ImageStore::contains(const std::string& name) const {
  return images_.contains(name);
}

std::vector<std::string> ImageStore::names() const {
  std::vector<std::string> out;
  out.reserve(images_.size());
  for (const auto& [name, image] : images_) out.push_back(name);
  return out;
}

Status DiskLedger::install(const Image& image) {
  if (installed_.contains(image.name)) return Status::ok();
  // First pass: compute the marginal cost.
  std::uint64_t marginal = 0;
  for (const ImageLayer& layer : image.layers) {
    if (!layer_refcount_.contains(layer.digest)) marginal += layer.size_bytes;
  }
  if (used_ + marginal > capacity_) {
    return util::resource_exhausted(
        "disk: need " + std::to_string(marginal) + " bytes, have " +
        std::to_string(capacity_ - used_));
  }
  for (const ImageLayer& layer : image.layers) {
    auto [it, inserted] = layer_refcount_.try_emplace(layer.digest, 0);
    if (it->second == 0) {
      used_ += layer.size_bytes;
      layer_size_[layer.digest] = layer.size_bytes;
    }
    it->second += 1;
  }
  installed_.insert(image.name);
  return Status::ok();
}

void DiskLedger::remove(const Image& image) {
  if (installed_.erase(image.name) == 0) return;
  for (const ImageLayer& layer : image.layers) {
    auto it = layer_refcount_.find(layer.digest);
    if (it == layer_refcount_.end()) continue;
    if (--it->second == 0) {
      used_ -= layer_size_[layer.digest];
      layer_size_.erase(layer.digest);
      layer_refcount_.erase(it);
    }
  }
}

bool DiskLedger::installed(const std::string& image_name) const {
  return installed_.contains(image_name);
}

FlavorImages make_flavor_images(const std::string& nf_name,
                                std::uint64_t package_bytes) {
  FlavorImages out;
  // Native: the package itself — Table 1's 5 MB for Strongswan.
  out.native.name = nf_name + ":native";
  out.native.kind = BackendKind::kNative;
  out.native.layers = {{nf_name + "-pkg", package_bytes}};

  // Docker: a distro base layer + runtime libraries + the package.
  // 240 MB total for strongswan in Table 1.
  out.docker.name = nf_name + ":docker";
  out.docker.kind = BackendKind::kDocker;
  out.docker.layers = {{"docker-base", 180 * kMiB},
                       {"docker-libs", 55 * kMiB},
                       {nf_name + "-pkg", package_bytes}};

  // VM: full disk image — guest OS + libraries + the package (522 MB).
  out.vm.name = nf_name + ":vm";
  out.vm.kind = BackendKind::kVm;
  out.vm.layers = {{"guest-os", 420 * kMiB},
                   {"guest-libs", 97 * kMiB},
                   {nf_name + "-pkg", package_bytes}};
  return out;
}

}  // namespace nnfv::virt
