// NF image registry and per-node disk ledger.
//
// Table 1's "image size" column compares a full VM disk image, a Docker
// image (base layers + package) and a native function (just the package,
// usually already installed). The store models exactly that: images are
// layered, layers are content-addressed and shared between images (Docker
// semantics), and installing an image onto a node consumes disk once per
// distinct layer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "virt/backend.hpp"

namespace nnfv::virt {

struct ImageLayer {
  std::string digest;  ///< content id; equal digests share disk
  std::uint64_t size_bytes = 0;
};

struct Image {
  std::string name;  ///< e.g. "strongswan:vm", "strongswan:docker"
  BackendKind kind = BackendKind::kVm;
  std::vector<ImageLayer> layers;

  [[nodiscard]] std::uint64_t total_size() const;
};

class ImageStore {
 public:
  util::Status register_image(Image image);
  [[nodiscard]] util::Result<Image> find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Image> images_;
};

/// Disk usage of one node: installed layers are deduplicated by digest.
class DiskLedger {
 public:
  explicit DiskLedger(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Installs an image; shared layers cost nothing the second time.
  /// Fails (resource_exhausted) when new layers would exceed capacity.
  util::Status install(const Image& image);

  /// Removes an image's layers when no other installed image references
  /// them.
  void remove(const Image& image);

  [[nodiscard]] bool installed(const std::string& image_name) const;
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<std::string, std::uint64_t> layer_refcount_;  // digest -> refs
  std::map<std::string, std::uint64_t> layer_size_;
  std::set<std::string> installed_;
};

/// Canonical image factory: the three flavors of one NF package, sized per
/// the Table 1 structure (native = package only; Docker = base + package;
/// VM = disk image with guest OS).
struct FlavorImages {
  Image native;
  Image docker;
  Image vm;
};
FlavorImages make_flavor_images(const std::string& nf_name,
                                std::uint64_t package_bytes);

}  // namespace nnfv::virt
