#include "compute/manager.hpp"

namespace nnfv::compute {

using util::Result;
using util::Status;

Status ComputeManager::register_driver(std::unique_ptr<ComputeDriver> driver) {
  if (driver == nullptr) return util::invalid_argument("null driver");
  const virt::BackendKind kind = driver->kind();
  if (drivers_.contains(kind)) {
    return util::already_exists("driver for backend '" +
                                std::string(virt::backend_name(kind)) + "'");
  }
  drivers_[kind] = std::move(driver);
  return Status::ok();
}

bool ComputeManager::has_driver(virt::BackendKind kind) const {
  return drivers_.contains(kind);
}

Result<ComputeDriver*> ComputeManager::driver(virt::BackendKind kind) const {
  auto it = drivers_.find(kind);
  if (it == drivers_.end()) {
    return util::unavailable("no driver for backend '" +
                             std::string(virt::backend_name(kind)) + "'");
  }
  return it->second.get();
}

std::vector<virt::BackendKind> ComputeManager::backends() const {
  std::vector<virt::BackendKind> out;
  out.reserve(drivers_.size());
  for (const auto& [kind, driver] : drivers_) out.push_back(kind);
  return out;
}

Result<DeployedNf> ComputeManager::deploy(virt::BackendKind backend,
                                          const NfDeploySpec& spec,
                                          nfswitch::Lsi& lsi) {
  auto drv = driver(backend);
  if (!drv) return drv.status();
  auto deployed = drv.value()->deploy(spec, lsi);
  if (!deployed) return deployed;
  dispatch_counts_[backend] += 1;
  deployments_[key_of(deployed.value())] = deployed.value();
  return deployed;
}

Status ComputeManager::update(const DeployedNf& deployed,
                              const nnf::NfConfig& config) {
  auto drv = driver(deployed.backend);
  if (!drv) return drv.status();
  return drv.value()->update(deployed, config);
}

Status ComputeManager::undeploy(const DeployedNf& deployed) {
  auto drv = driver(deployed.backend);
  if (!drv) return drv.status();
  NNFV_RETURN_IF_ERROR(drv.value()->undeploy(deployed));
  deployments_.erase(key_of(deployed));
  return Status::ok();
}

util::Result<json::Value> ComputeManager::nf_stats(
    const DeployedNf& deployed) const {
  auto drv = driver(deployed.backend);
  if (!drv) return drv.status();
  return drv.value()->nf_stats(deployed);
}

std::vector<DeployedNf> ComputeManager::deployments_of(
    const std::string& graph_id) const {
  std::vector<DeployedNf> out;
  for (const auto& [key, deployed] : deployments_) {
    if (deployed.graph_id == graph_id) out.push_back(deployed);
  }
  return out;
}

}  // namespace nnfv::compute
