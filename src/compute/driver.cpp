#include "compute/driver.hpp"

// The abstract driver interface has no out-of-line members; this file
// exists so the interface owns a translation unit (and future shared
// helpers have a home).

namespace nnfv::compute {}  // namespace nnfv::compute
