// GenericVnfDriver: shared implementation of the VM, Docker and DPDK
// drivers. The three technologies differ only in their BackendCost
// constants, RAM overhead and image flavor — exactly the knobs the virt
// models expose — so one implementation parameterized by BackendKind
// covers them. Each concrete driver (vm_driver/docker_driver/dpdk_driver)
// pins the kind and the Figure 1 driver name.
#pragma once

#include <map>
#include <memory>

#include "compute/driver.hpp"
#include "compute/templates.hpp"
#include "sim/simulator.hpp"
#include "virt/image_store.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::compute {

/// Everything a generic driver needs from the node. Non-owning; the node
/// object (core) guarantees these outlive the drivers.
struct DriverEnv {
  sim::Simulator* simulator = nullptr;
  const VnfTemplateRegistry* templates = nullptr;
  const virt::ImageStore* images = nullptr;
  virt::DiskLedger* disk = nullptr;
  virt::RamLedger* ram = nullptr;
};

class GenericVnfDriver : public ComputeDriver {
 public:
  GenericVnfDriver(virt::BackendKind kind, std::string name, DriverEnv env);

  [[nodiscard]] virt::BackendKind kind() const override { return kind_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] bool can_deploy(
      const std::string& functional_type) const override;

  util::Result<DeployedNf> deploy(const NfDeploySpec& spec,
                                  nfswitch::Lsi& lsi) override;

  util::Status update(const DeployedNf& deployed,
                      const nnf::NfConfig& config) override;

  util::Status undeploy(const DeployedNf& deployed) override;

  [[nodiscard]] util::Result<json::Value> nf_stats(
      const DeployedNf& deployed) const override;

  /// Running instances (diagnostics / Figure 1 bench).
  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }

  /// Default image name for a functional type under this backend
  /// ("<type>:<backend>"), used when the spec does not name one.
  [[nodiscard]] std::string default_image(
      const std::string& functional_type) const;

 private:
  struct Record {
    std::shared_ptr<NfInstance> instance;
    nfswitch::Lsi* lsi = nullptr;
    std::vector<nfswitch::PortId> lsi_ports;
    virt::Image image;
    std::uint64_t ram_bytes = 0;
  };

  virt::BackendKind kind_;
  std::string name_;
  DriverEnv env_;
  InstanceId next_instance_ = 1;
  std::map<InstanceId, Record> instances_;
};

}  // namespace nnfv::compute
