#include "compute/instance.hpp"

#include <memory>

namespace nnfv::compute {

std::string_view instance_state_name(InstanceState state) {
  switch (state) {
    case InstanceState::kCreated:
      return "created";
    case InstanceState::kRunning:
      return "running";
    case InstanceState::kStopped:
      return "stopped";
    case InstanceState::kDestroyed:
      return "destroyed";
  }
  return "?";
}

NfInstance::NfInstance(InstanceId id, std::string name,
                       std::unique_ptr<nnf::NetworkFunction> function,
                       virt::CostModel cost, sim::Simulator& simulator,
                       std::size_t queue_capacity)
    : id_(id),
      name_(std::move(name)),
      function_(std::move(function)),
      cost_(cost),
      simulator_(simulator),
      station_(simulator, queue_capacity) {}

void NfInstance::set_egress(nnf::ContextId ctx, Egress egress) {
  egress_[ctx] = std::move(egress);
}

void NfInstance::set_burst_egress(nnf::ContextId ctx, BurstEgress egress) {
  burst_egress_[ctx] = std::move(egress);
}

void NfInstance::clear_egress(nnf::ContextId ctx) {
  egress_.erase(ctx);
  burst_egress_.erase(ctx);
}

void NfInstance::inject(nnf::ContextId ctx, nnf::NfPortIndex port,
                        packet::PacketBuffer&& frame) {
  // Burst-of-1 over the one packet-ingress contract. NetworkFunction's
  // default process_burst() delegates to per-frame process(), so NFs
  // without a dedicated burst path behave exactly as before.
  packet::PacketBurst single;
  single.push_back(std::move(frame));
  inject_burst(ctx, port, std::move(single));
}

void NfInstance::inject_burst(nnf::ContextId ctx, nnf::NfPortIndex port,
                              packet::PacketBurst&& burst) {
  if (state_ != InstanceState::kRunning) {
    dropped_not_running_ += burst.size();
    return;
  }
  if (burst.empty()) return;
  sim::SimTime service = 0;
  for (const packet::PacketBuffer& frame : burst) {
    service += cost_.service_time(frame.size());
  }
  auto held = std::make_shared<packet::PacketBurst>(std::move(burst));
  station_.submit(service, [this, ctx, port, held]() {
    auto outputs = function_->process_burst(ctx, port, simulator_.now(),
                                            std::move(*held));
    dispatch_outputs(ctx, std::move(outputs), /*prefer_burst=*/true);
  });
}

void NfInstance::dispatch_outputs(nnf::ContextId ctx,
                                  std::vector<nnf::NfOutput>&& outputs,
                                  bool prefer_burst) {
  // Either wiring alone is enough for both inject paths: the burst path
  // prefers the burst egress (regrouped per output port, same-port order
  // preserved) and the single path prefers per-frame egress (no batch
  // allocation per packet) — each falls back to the other.
  auto egress = egress_.find(ctx);
  auto burst_egress = burst_egress_.find(ctx);
  const bool use_burst =
      burst_egress != burst_egress_.end() &&
      (prefer_burst || egress == egress_.end());
  if (use_burst) {
    packet::BurstGroups<nnf::NfPortIndex> groups;
    for (nnf::NfOutput& output : outputs) {
      groups.add(output.port, std::move(output.frame));
    }
    for (auto& [gp, g] : groups) burst_egress->second(gp, std::move(g));
    return;
  }
  if (egress == egress_.end()) return;
  for (nnf::NfOutput& output : outputs) {
    egress->second(output.port, std::move(output.frame));
  }
}

void NfInstance::inject_custom(std::size_t bytes,
                               std::function<void()> handler) {
  if (state_ != InstanceState::kRunning) {
    ++dropped_not_running_;
    return;
  }
  station_.submit(cost_.service_time(bytes), std::move(handler));
}

void NfInstance::inject_custom_burst(
    packet::PacketBurst&& burst,
    std::function<void(packet::PacketBurst&&)> handler) {
  if (state_ != InstanceState::kRunning) {
    dropped_not_running_ += burst.size();
    return;
  }
  if (burst.empty()) return;
  sim::SimTime service = 0;
  for (const packet::PacketBuffer& frame : burst) {
    service += cost_.service_time(frame.size());
  }
  auto held = std::make_shared<packet::PacketBurst>(std::move(burst));
  station_.submit(service, [handler = std::move(handler), held]() {
    handler(std::move(*held));
  });
}

util::Status NfInstance::start() {
  if (state_ == InstanceState::kDestroyed) {
    return util::failed_precondition("instance destroyed");
  }
  state_ = InstanceState::kRunning;
  return util::Status::ok();
}

util::Status NfInstance::stop() {
  if (state_ != InstanceState::kRunning) {
    return util::failed_precondition("instance not running");
  }
  state_ = InstanceState::kStopped;
  return util::Status::ok();
}

util::Status NfInstance::destroy() {
  state_ = InstanceState::kDestroyed;
  return util::Status::ok();
}

}  // namespace nnfv::compute
