#include "compute/dpdk_driver.hpp"

// Behaviour entirely inherited from GenericVnfDriver; the DPDK specifics
// are the BackendKind::kDpdk constants in src/virt.

namespace nnfv::compute {}  // namespace nnfv::compute
