#include "compute/vm_driver.hpp"

// Behaviour entirely inherited from GenericVnfDriver; the VM specifics are
// the BackendKind::kVm cost/RAM/image constants in src/virt.

namespace nnfv::compute {}  // namespace nnfv::compute
