// Docker driver (Figure 1): containers sharing the host kernel.
#pragma once

#include "compute/generic_driver.hpp"

namespace nnfv::compute {

class DockerDriver final : public GenericVnfDriver {
 public:
  explicit DockerDriver(DriverEnv env)
      : GenericVnfDriver(virt::BackendKind::kDocker, "docker", env) {}
};

}  // namespace nnfv::compute
