// VnfTemplateRegistry: the software content of VNF images.
//
// A VM/Docker/DPDK image in the VNF repository wraps the same functional
// code paths as the native functions (the paper's premise). A template
// binds a functional type to a function factory plus its compute/memory
// profiles, so the generic drivers can instantiate the logic while the
// backend supplies the wrapping costs.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nnf/network_function.hpp"
#include "util/status.hpp"
#include "virt/cost_model.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::compute {

struct VnfTemplate {
  std::string functional_type;
  std::function<util::Result<std::unique_ptr<nnf::NetworkFunction>>()>
      factory;
  virt::NfComputeProfile compute;
  virt::NfMemoryProfile memory;
  std::uint64_t package_bytes = 0;  ///< NF package size inside the image
  std::uint32_t num_ports = 2;
};

class VnfTemplateRegistry {
 public:
  util::Status register_template(VnfTemplate tmpl);
  [[nodiscard]] bool has(const std::string& functional_type) const;
  [[nodiscard]] util::Result<VnfTemplate> find(
      const std::string& functional_type) const;
  [[nodiscard]] std::vector<std::string> types() const;

  /// Templates for the built-in functions (bridge/firewall/nat/ipsec),
  /// mirroring nnf::NnfCatalog::with_builtin_plugins().
  static VnfTemplateRegistry with_builtin_templates();

 private:
  std::map<std::string, VnfTemplate> templates_;
};

}  // namespace nnfv::compute
