// ComputeDriver: "all the above drivers must implement a specific
// abstraction defined by the local orchestrator, which enables multiple
// drivers to coexist, hence implementing complex services that include
// VNFs created with different technologies" (paper §2).
//
// A driver deploys one NF of a graph onto that graph's LSI: it creates the
// LSI ports ("network function ports" in Figure 1), wires the datapath in
// both directions, and accounts resources. The orchestrator only sees this
// interface — NNFs and VM/Docker/DPDK VNFs are interchangeable behind it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compute/instance.hpp"
#include "json/json.hpp"
#include "nnf/marking.hpp"
#include "nnf/network_function.hpp"
#include "switch/lsi.hpp"
#include "util/status.hpp"
#include "virt/backend.hpp"

namespace nnfv::compute {

/// What the orchestrator asks a driver to deploy.
struct NfDeploySpec {
  std::string graph_id;
  std::string nf_id;            ///< NF id within the graph
  std::string functional_type;  ///< "ipsec", "nat", ...
  std::uint32_t num_ports = 2;
  nnf::NfConfig config;
  /// Image resolved by the VNF resolver (VM/Docker/DPDK; unused by NNFs).
  std::string image;
};

/// How one logical NF port was attached to the graph LSI.
struct PortAttachment {
  nfswitch::PortId lsi_port = nfswitch::kInvalidPort;
  /// Mark used on the shared single-interface path, when applicable.
  std::optional<nnf::Mark> mark;
};

/// Result of a deployment, the handle for update/undeploy.
struct DeployedNf {
  std::string graph_id;
  std::string nf_id;
  std::string functional_type;
  virt::BackendKind backend = virt::BackendKind::kVm;
  InstanceId instance = 0;
  nnf::ContextId context = nnf::kDefaultContext;
  std::vector<PortAttachment> ports;  ///< index = logical NF port
  std::uint64_t ram_bytes = 0;        ///< reserved for this deployment
  std::uint64_t image_bytes = 0;      ///< size of the image used
  sim::SimTime boot_time = 0;         ///< modeled create->running latency
  bool reused_shared_instance = false;
};

class ComputeDriver {
 public:
  virtual ~ComputeDriver() = default;

  [[nodiscard]] virtual virt::BackendKind kind() const = 0;
  /// Driver name as in Figure 1 ("libvirt", "Docker", "DPDK", "Native").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when this driver can deploy the functional type right now
  /// (template/plugin available, instance limits not exceeded).
  [[nodiscard]] virtual bool can_deploy(
      const std::string& functional_type) const = 0;

  virtual util::Result<DeployedNf> deploy(const NfDeploySpec& spec,
                                          nfswitch::Lsi& lsi) = 0;

  /// Applies a configuration update to a deployed NF.
  virtual util::Status update(const DeployedNf& deployed,
                              const nnf::NfConfig& config) = 0;

  virtual util::Status undeploy(const DeployedNf& deployed) = 0;

  /// Live status counters of a deployed NF's context (the function's
  /// describe_stats()), surfaced through the REST status path.
  [[nodiscard]] virtual util::Result<json::Value> nf_stats(
      const DeployedNf& /*deployed*/) const {
    return util::unimplemented(std::string(name()) +
                               ": stats not supported");
  }
};

}  // namespace nnfv::compute
