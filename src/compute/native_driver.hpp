// NativeDriver — the NNF driver this paper contributes.
//
// "When a NNF should be used, the compute manager selects a NNF driver
// developed as part of this work. This NNF driver implements the same
// abstraction defined for the other compute drivers and dynamically
// activates the plugin associated to the selected NNF. [...] The NNF
// driver starts the NNF in a new network namespace, to provide a basic
// form of isolation, and configures the NNF with a predefined
// configuration script." (paper §2)
//
// Responsibilities, mirrored here:
//  * plugin activation via nnf::NnfCatalog (the bash-script collection);
//  * max-instance enforcement and *sharing*: a sharable NNF that is
//    already running serves additional service graphs through new
//    isolated contexts instead of new processes;
//  * per-graph traffic marking (nnf::MarkAllocator) and the adaptation
//    layer for single-interface NNFs;
//  * network-namespace isolation with veth attachments;
//  * resource accounting (native functions add no backend RAM overhead
//    and no image to pull — Table 1's native row).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "compute/driver.hpp"
#include "netns/netns.hpp"
#include "nnf/adaptation.hpp"
#include "nnf/catalog.hpp"
#include "nnf/marking.hpp"
#include "sim/simulator.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::compute {

struct NativeDriverEnv {
  sim::Simulator* simulator = nullptr;
  nnf::NnfCatalog* catalog = nullptr;
  netns::NamespaceRegistry* netns = nullptr;
  nnf::MarkAllocator* marks = nullptr;
  virt::RamLedger* ram = nullptr;
};

class NativeDriver final : public ComputeDriver {
 public:
  explicit NativeDriver(NativeDriverEnv env);

  [[nodiscard]] virt::BackendKind kind() const override {
    return virt::BackendKind::kNative;
  }
  [[nodiscard]] std::string_view name() const override { return "native"; }

  [[nodiscard]] bool can_deploy(
      const std::string& functional_type) const override;

  util::Result<DeployedNf> deploy(const NfDeploySpec& spec,
                                  nfswitch::Lsi& lsi) override;

  util::Status update(const DeployedNf& deployed,
                      const nnf::NfConfig& config) override;

  util::Status undeploy(const DeployedNf& deployed) override;

  [[nodiscard]] util::Result<json::Value> nf_stats(
      const DeployedNf& deployed) const override;

  /// Diagnostics for tests and the Figure 1 bench.
  [[nodiscard]] std::size_t running_instances(
      const std::string& functional_type) const;
  [[nodiscard]] std::size_t total_instances() const;

 private:
  /// One running native instance (possibly shared by several graphs).
  struct Shared {
    std::shared_ptr<NfInstance> instance;
    std::shared_ptr<nnf::NnfPlugin> plugin;
    std::unique_ptr<nnf::AdaptationLayer> adaptation;  // single-interface
    std::string ns_name;
    nnf::ContextId next_ctx = 0;
    std::size_t active_contexts = 0;
    std::uint64_t base_ram = 0;
    /// Adaptation egress routing: mark -> destination LSI port.
    std::map<nnf::Mark, std::pair<nfswitch::Lsi*, nfswitch::PortId>> routes;
  };

  struct Deployment {
    std::shared_ptr<Shared> shared;
    nnf::ContextId ctx = nnf::kDefaultContext;
    nfswitch::Lsi* lsi = nullptr;
    std::vector<nfswitch::PortId> lsi_ports;
    std::vector<std::string> mark_owners;
    std::vector<nnf::Mark> marks;
    /// RAM this deployment itself reserved (context state only; the
    /// instance's base RAM is owned by the instance and released when the
    /// last context goes away).
    std::uint64_t owned_ram = 0;
    std::string functional_type;
  };

  util::Result<std::shared_ptr<Shared>> create_instance(
      const std::string& functional_type,
      const std::shared_ptr<nnf::NnfPlugin>& plugin);

  void destroy_instance(const std::string& functional_type,
                        const std::shared_ptr<Shared>& shared);

  static std::string deployment_key(const std::string& graph_id,
                                    const std::string& nf_id) {
    return graph_id + "/" + nf_id;
  }

  NativeDriverEnv env_;
  InstanceId next_instance_ = 1;
  std::map<std::string, std::vector<std::shared_ptr<Shared>>> running_;
  std::map<std::string, Deployment> deployments_;
};

}  // namespace nnfv::compute
