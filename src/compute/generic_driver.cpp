#include "compute/generic_driver.hpp"

#include "util/logging.hpp"

namespace nnfv::compute {

using util::Result;
using util::Status;

GenericVnfDriver::GenericVnfDriver(virt::BackendKind kind, std::string name,
                                   DriverEnv env)
    : kind_(kind), name_(std::move(name)), env_(env) {}

bool GenericVnfDriver::can_deploy(const std::string& functional_type) const {
  return env_.templates != nullptr && env_.templates->has(functional_type) &&
         env_.images != nullptr &&
         env_.images->contains(default_image(functional_type));
}

std::string GenericVnfDriver::default_image(
    const std::string& functional_type) const {
  return functional_type + ":" + std::string(virt::backend_name(kind_));
}

Result<DeployedNf> GenericVnfDriver::deploy(const NfDeploySpec& spec,
                                            nfswitch::Lsi& lsi) {
  auto tmpl = env_.templates->find(spec.functional_type);
  if (!tmpl) return tmpl.status();

  const std::string image_name =
      spec.image.empty() ? default_image(spec.functional_type) : spec.image;
  auto image = env_.images->find(image_name);
  if (!image) return image.status();

  // Resources first, so failure leaves no partial state.
  NNFV_RETURN_IF_ERROR(env_.disk->install(image.value()));
  const std::uint64_t ram = virt::instance_ram(kind_, tmpl->memory);
  if (!env_.ram->reserve(ram)) {
    env_.disk->remove(image.value());
    return util::resource_exhausted(
        "RAM: instance needs " + std::to_string(ram) + " bytes, " +
        std::to_string(env_.ram->available()) + " available");
  }

  auto function = tmpl->factory();
  if (!function) {
    env_.ram->release(ram);
    env_.disk->remove(image.value());
    return function.status();
  }

  const InstanceId iid = next_instance_++;
  const std::string instance_name =
      spec.graph_id + "/" + spec.nf_id + "@" + name_;
  auto instance = std::make_shared<NfInstance>(
      iid, instance_name, std::move(function.value()),
      virt::CostModel(kind_, tmpl->compute), *env_.simulator);

  if (!spec.config.empty()) {
    Status config_status =
        instance->function().configure(nnf::kDefaultContext, spec.config);
    if (!config_status.is_ok()) {
      env_.ram->release(ram);
      env_.disk->remove(image.value());
      return config_status;
    }
  }

  // Attach: one LSI port per logical NF port, wired both ways.
  DeployedNf deployed;
  deployed.graph_id = spec.graph_id;
  deployed.nf_id = spec.nf_id;
  deployed.functional_type = spec.functional_type;
  deployed.backend = kind_;
  deployed.instance = iid;
  deployed.context = nnf::kDefaultContext;
  deployed.ram_bytes = ram;
  deployed.image_bytes = image->total_size();
  deployed.boot_time = virt::backend_cost(kind_).boot_ns;

  Record record;
  record.instance = instance;
  record.lsi = &lsi;
  record.image = image.value();
  record.ram_bytes = ram;

  const std::uint32_t ports =
      spec.num_ports == 0 ? tmpl->num_ports : spec.num_ports;
  for (std::uint32_t p = 0; p < ports; ++p) {
    auto port = lsi.add_port(spec.nf_id + ":" + std::to_string(p));
    if (!port) {
      for (nfswitch::PortId created : record.lsi_ports) {
        (void)lsi.remove_port(created);
      }
      env_.ram->release(ram);
      env_.disk->remove(image.value());
      return port.status();
    }
    record.lsi_ports.push_back(port.value());
    deployed.ports.push_back(PortAttachment{port.value(), std::nullopt});
    // Switch -> NF (burst variant keeps classified bursts together).
    (void)lsi.set_port_peer(
        port.value(),
        [instance, p](packet::PacketBuffer&& frame) {
          instance->inject(nnf::kDefaultContext, p, std::move(frame));
        });
    (void)lsi.set_port_burst_peer(
        port.value(),
        [instance, p](packet::PacketBurst&& burst) {
          instance->inject_burst(nnf::kDefaultContext, p, std::move(burst));
        });
  }
  // NF -> switch: outputs re-enter the LSI pipeline on the matching port.
  std::vector<nfswitch::PortId> port_map = record.lsi_ports;
  nfswitch::Lsi* lsi_ptr = &lsi;
  instance->set_egress(
      nnf::kDefaultContext,
      [lsi_ptr, port_map](nnf::NfPortIndex out_port,
                          packet::PacketBuffer&& frame) {
        if (out_port < port_map.size()) {
          lsi_ptr->receive(port_map[out_port], std::move(frame));
        }
      });
  instance->set_burst_egress(
      nnf::kDefaultContext,
      [lsi_ptr, port_map](nnf::NfPortIndex out_port,
                          packet::PacketBurst&& burst) {
        if (out_port < port_map.size()) {
          lsi_ptr->receive_burst(port_map[out_port], std::move(burst));
        }
      });

  NNFV_RETURN_IF_ERROR(instance->start());
  instances_[iid] = std::move(record);
  NNFV_LOG(kInfo, "compute") << name_ << ": deployed " << instance_name
                             << " (image " << image_name << ")";
  return deployed;
}

Status GenericVnfDriver::update(const DeployedNf& deployed,
                                const nnf::NfConfig& config) {
  auto it = instances_.find(deployed.instance);
  if (it == instances_.end()) {
    return util::not_found("instance " + std::to_string(deployed.instance));
  }
  return it->second.instance->function().configure(deployed.context, config);
}

util::Result<json::Value> GenericVnfDriver::nf_stats(
    const DeployedNf& deployed) const {
  auto it = instances_.find(deployed.instance);
  if (it == instances_.end()) {
    return util::not_found("instance " + std::to_string(deployed.instance));
  }
  return it->second.instance->function().describe_stats(deployed.context);
}

Status GenericVnfDriver::undeploy(const DeployedNf& deployed) {
  auto it = instances_.find(deployed.instance);
  if (it == instances_.end()) {
    return util::not_found("instance " + std::to_string(deployed.instance));
  }
  Record& record = it->second;
  for (nfswitch::PortId port : record.lsi_ports) {
    (void)record.lsi->remove_port(port);
  }
  (void)record.instance->destroy();
  env_.ram->release(record.ram_bytes);
  env_.disk->remove(record.image);
  instances_.erase(it);
  return Status::ok();
}

}  // namespace nnfv::compute
