// ComputeManager: Figure 1's "Compute manager" box — owns the management
// drivers and dispatches deployment requests to the driver matching the
// backend the scheduler chose.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "compute/driver.hpp"

namespace nnfv::compute {

class ComputeManager {
 public:
  util::Status register_driver(std::unique_ptr<ComputeDriver> driver);

  [[nodiscard]] bool has_driver(virt::BackendKind kind) const;
  [[nodiscard]] util::Result<ComputeDriver*> driver(
      virt::BackendKind kind) const;
  [[nodiscard]] std::vector<virt::BackendKind> backends() const;

  /// Deploys via the driver for `backend`; records the deployment.
  util::Result<DeployedNf> deploy(virt::BackendKind backend,
                                  const NfDeploySpec& spec,
                                  nfswitch::Lsi& lsi);

  util::Status update(const DeployedNf& deployed, const nnf::NfConfig& config);

  util::Status undeploy(const DeployedNf& deployed);

  /// Live status counters of one deployment (driver-dispatched).
  [[nodiscard]] util::Result<json::Value> nf_stats(
      const DeployedNf& deployed) const;

  /// Deployments of one graph (teardown, status reporting).
  [[nodiscard]] std::vector<DeployedNf> deployments_of(
      const std::string& graph_id) const;
  [[nodiscard]] std::size_t total_deployments() const {
    return deployments_.size();
  }

  /// Per-driver deployment counters (the Figure 1 bench reports these).
  [[nodiscard]] std::map<virt::BackendKind, std::uint64_t> dispatch_counts()
      const {
    return dispatch_counts_;
  }

 private:
  static std::string key_of(const DeployedNf& deployed) {
    return deployed.graph_id + "/" + deployed.nf_id;
  }

  std::map<virt::BackendKind, std::unique_ptr<ComputeDriver>> drivers_;
  std::map<std::string, DeployedNf> deployments_;
  std::map<virt::BackendKind, std::uint64_t> dispatch_counts_;
};

}  // namespace nnfv::compute
