#include "compute/docker_driver.hpp"

// Behaviour entirely inherited from GenericVnfDriver; the container
// specifics are the BackendKind::kDocker constants in src/virt.

namespace nnfv::compute {}  // namespace nnfv::compute
