// DPDK driver (Figure 1): user-space poll-mode processes.
#pragma once

#include "compute/generic_driver.hpp"

namespace nnfv::compute {

class DpdkDriver final : public GenericVnfDriver {
 public:
  explicit DpdkDriver(DriverEnv env)
      : GenericVnfDriver(virt::BackendKind::kDpdk, "dpdk", env) {}
};

}  // namespace nnfv::compute
