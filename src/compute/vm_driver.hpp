// VM driver ("libvirt" box in Figure 1): full KVM/QEMU virtual machines.
#pragma once

#include "compute/generic_driver.hpp"

namespace nnfv::compute {

class VmDriver final : public GenericVnfDriver {
 public:
  explicit VmDriver(DriverEnv env)
      : GenericVnfDriver(virt::BackendKind::kVm, "libvirt", env) {}
};

}  // namespace nnfv::compute
