// NfInstance: one running network function — the function logic, the
// backend it executes under, and the single-server queue that gives it
// backend-dependent per-packet timing in the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "nnf/network_function.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "virt/cost_model.hpp"

namespace nnfv::compute {

using InstanceId = std::uint64_t;

enum class InstanceState { kCreated, kRunning, kStopped, kDestroyed };

std::string_view instance_state_name(InstanceState state);

class NfInstance {
 public:
  /// Where processed frames go, per context: (out_port, frame).
  using Egress =
      std::function<void(nnf::NfPortIndex, packet::PacketBuffer&&)>;
  /// Burst egress: all frames leaving one logical port in one call.
  using BurstEgress =
      std::function<void(nnf::NfPortIndex, packet::PacketBurst&&)>;

  NfInstance(InstanceId id, std::string name,
             std::unique_ptr<nnf::NetworkFunction> function,
             virt::CostModel cost, sim::Simulator& simulator,
             std::size_t queue_capacity = 512);

  [[nodiscard]] InstanceId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] InstanceState state() const { return state_; }
  [[nodiscard]] const virt::CostModel& cost() const { return cost_; }

  nnf::NetworkFunction& function() { return *function_; }
  [[nodiscard]] const nnf::NetworkFunction& function() const {
    return *function_;
  }

  void set_egress(nnf::ContextId ctx, Egress egress);
  /// Optional: when set, burst outputs leave grouped per port.
  void set_burst_egress(nnf::ContextId ctx, BurstEgress egress);
  void clear_egress(nnf::ContextId ctx);

  /// Datapath entry: frame arrives at logical `port` of context `ctx`.
  /// Queues for the backend-dependent service time, then runs the function
  /// and dispatches its outputs through the context's egress. Running
  /// instances only; otherwise the frame is dropped.
  void inject(nnf::ContextId ctx, nnf::NfPortIndex port,
              packet::PacketBuffer&& frame);

  /// Burst datapath entry: the whole burst is one service-station item
  /// whose service time is the sum of the per-frame times — the function
  /// runs once per burst (one event, one virtual dispatch) instead of once
  /// per frame.
  void inject_burst(nnf::ContextId ctx, nnf::NfPortIndex port,
                    packet::PacketBurst&& burst);

  /// Datapath entry for adaptation-layer deployments: after the service
  /// delay, `handler` runs instead of the direct process+egress path.
  void inject_custom(std::size_t bytes, std::function<void()> handler);

  /// Burst variant of inject_custom: the whole burst is one service-station
  /// item (service time = sum of per-frame times, matching inject_burst)
  /// and `handler` receives it back after the delay — the adaptation layer
  /// then demultiplexes the burst in one pass.
  void inject_custom_burst(packet::PacketBurst&& burst,
                           std::function<void(packet::PacketBurst&&)> handler);

  util::Status start();
  util::Status stop();
  util::Status destroy();

  [[nodiscard]] const sim::QueueStats& queue_stats() const {
    return station_.stats();
  }
  [[nodiscard]] double utilization() const { return station_.utilization(); }
  [[nodiscard]] std::uint64_t dropped_not_running() const {
    return dropped_not_running_;
  }

 private:
  /// Routes processed frames out — shared by inject() and inject_burst().
  /// prefer_burst selects the burst egress when both wirings exist; each
  /// path falls back to the other when only one is wired.
  void dispatch_outputs(nnf::ContextId ctx,
                        std::vector<nnf::NfOutput>&& outputs,
                        bool prefer_burst);

  InstanceId id_;
  std::string name_;
  std::unique_ptr<nnf::NetworkFunction> function_;
  virt::CostModel cost_;
  sim::Simulator& simulator_;
  sim::ServiceStation station_;
  std::map<nnf::ContextId, Egress> egress_;
  std::map<nnf::ContextId, BurstEgress> burst_egress_;
  InstanceState state_ = InstanceState::kCreated;
  std::uint64_t dropped_not_running_ = 0;
};

}  // namespace nnfv::compute
