#include "compute/templates.hpp"

#include "nnf/bridge.hpp"
#include "nnf/firewall.hpp"
#include "nnf/ipsec.hpp"
#include "nnf/nat.hpp"

namespace nnfv::compute {

util::Status VnfTemplateRegistry::register_template(VnfTemplate tmpl) {
  if (tmpl.functional_type.empty()) {
    return util::invalid_argument("template with empty functional type");
  }
  if (!tmpl.factory) {
    return util::invalid_argument("template '" + tmpl.functional_type +
                                  "' has no factory");
  }
  if (templates_.contains(tmpl.functional_type)) {
    return util::already_exists("template '" + tmpl.functional_type + "'");
  }
  templates_[tmpl.functional_type] = std::move(tmpl);
  return util::Status::ok();
}

bool VnfTemplateRegistry::has(const std::string& functional_type) const {
  return templates_.contains(functional_type);
}

util::Result<VnfTemplate> VnfTemplateRegistry::find(
    const std::string& functional_type) const {
  auto it = templates_.find(functional_type);
  if (it == templates_.end()) {
    return util::not_found("VNF template '" + functional_type + "'");
  }
  return it->second;
}

std::vector<std::string> VnfTemplateRegistry::types() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [type, tmpl] : templates_) out.push_back(type);
  return out;
}

VnfTemplateRegistry VnfTemplateRegistry::with_builtin_templates() {
  VnfTemplateRegistry registry;

  VnfTemplate bridge;
  bridge.functional_type = "bridge";
  bridge.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        std::make_unique<nnf::Bridge>());
  };
  bridge.compute = virt::profile_forwarding();
  bridge.memory = {2 * virt::kMiB, 64, 256 * 1024};
  bridge.package_bytes = 300 * 1024;
  (void)registry.register_template(std::move(bridge));

  VnfTemplate firewall;
  firewall.functional_type = "firewall";
  firewall.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        std::make_unique<nnf::Firewall>());
  };
  firewall.compute = virt::profile_forwarding();
  firewall.memory = {4 * virt::kMiB, 128, 256 * 1024};
  firewall.package_bytes = 1200 * 1024;
  (void)registry.register_template(std::move(firewall));

  VnfTemplate nat;
  nat.functional_type = "nat";
  nat.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        std::make_unique<nnf::Nat>());
  };
  nat.compute = virt::profile_nat();
  nat.memory = {6 * virt::kMiB, 256, 256 * 1024};
  nat.package_bytes = 1200 * 1024;
  (void)registry.register_template(std::move(nat));

  VnfTemplate ipsec;
  ipsec.functional_type = "ipsec";
  ipsec.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        std::make_unique<nnf::IpsecEndpoint>());
  };
  ipsec.compute = virt::profile_ipsec_esp();
  // 19.4 MB working set (Table 1's native RAM column is exactly this).
  ipsec.memory = {19 * virt::kMiB + 400 * virt::kKiB, 512, 700 * 1024};
  ipsec.package_bytes = 5 * virt::kMiB;
  (void)registry.register_template(std::move(ipsec));

  return registry;
}

}  // namespace nnfv::compute
