#include "compute/native_driver.hpp"

#include "packet/builder.hpp"
#include "util/logging.hpp"

namespace nnfv::compute {

using util::Result;
using util::Status;

namespace {

/// Resolves an adaptation-egress frame to its destination (LSI, port) by
/// its mark and strips the mark; nullopt when untagged or unrouted. Shared
/// by the per-frame and burst egress paths so their routing cannot drift.
std::optional<std::pair<nfswitch::Lsi*, nfswitch::PortId>>
route_adaptation_egress(
    const std::map<nnf::Mark, std::pair<nfswitch::Lsi*, nfswitch::PortId>>&
        routes,
    packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth || !eth->vlan.has_value()) return std::nullopt;
  auto route = routes.find(*eth->vlan);
  if (route == routes.end()) return std::nullopt;
  packet::set_vlan(frame, std::nullopt);
  return route->second;
}

}  // namespace

NativeDriver::NativeDriver(NativeDriverEnv env) : env_(env) {}

bool NativeDriver::can_deploy(const std::string& functional_type) const {
  if (env_.catalog == nullptr || !env_.catalog->has(functional_type)) {
    return false;
  }
  return env_.catalog->can_share(functional_type) ||
         env_.catalog->can_instantiate(functional_type);
}

Result<std::shared_ptr<NativeDriver::Shared>> NativeDriver::create_instance(
    const std::string& functional_type,
    const std::shared_ptr<nnf::NnfPlugin>& plugin) {
  const nnf::NnfDescriptor& desc = plugin->descriptor();
  const InstanceId iid = next_instance_++;

  // Fresh network namespace + one veth pair per logical port ("the NNF
  // driver starts the NNF in a new network namespace").
  const std::string ns_name =
      "ns-" + functional_type + "-" + std::to_string(iid);
  auto ns = env_.netns->create(ns_name);
  if (!ns) return ns.status();
  for (std::uint32_t p = 0; p < desc.num_ports; ++p) {
    const std::string host_end =
        "veth-" + functional_type + std::to_string(iid) + "-" +
        std::to_string(p);
    Status veth = env_.netns->create_veth(netns::kRootNamespace, host_end,
                                          ns.value(),
                                          "eth" + std::to_string(p));
    if (!veth.is_ok()) {
      (void)env_.netns->destroy(ns_name);
      return veth;
    }
    (void)env_.netns->set_interface_up(ns.value(), "eth" + std::to_string(p),
                                       true);
  }

  const std::uint64_t base_ram =
      virt::instance_ram(virt::BackendKind::kNative, desc.memory);
  if (!env_.ram->reserve(base_ram)) {
    (void)env_.netns->destroy(ns_name);
    return util::resource_exhausted("RAM: native instance of '" +
                                    functional_type + "' needs " +
                                    std::to_string(base_ram) + " bytes");
  }

  auto function = plugin->create_function();
  if (!function) {
    env_.ram->release(base_ram);
    (void)env_.netns->destroy(ns_name);
    return function.status();
  }

  auto shared = std::make_shared<Shared>();
  shared->plugin = plugin;
  shared->ns_name = ns_name;
  shared->base_ram = base_ram;
  shared->instance = std::make_shared<NfInstance>(
      iid, "nnf/" + functional_type + "#" + std::to_string(iid),
      std::move(function.value()),
      virt::CostModel(virt::BackendKind::kNative, desc.compute),
      *env_.simulator);

  if (desc.single_interface) {
    shared->adaptation =
        std::make_unique<nnf::AdaptationLayer>(shared->instance->function());
    // Egress: frames leave the adaptation layer re-marked; route on the
    // mark, strip it, and hand the frame back to the right LSI port.
    Shared* raw = shared.get();
    shared->adaptation->set_transmit([raw](packet::PacketBuffer&& frame) {
      if (auto dest = route_adaptation_egress(raw->routes, frame)) {
        dest->first->receive(dest->second, std::move(frame));
      }
    });
    // Burst egress: re-enter each LSI port's pipeline with one
    // receive_burst per destination.
    shared->adaptation->set_burst_transmit(
        [raw](packet::PacketBurst&& burst) {
          packet::BurstGroups<std::pair<nfswitch::Lsi*, nfswitch::PortId>>
              groups;
          for (packet::PacketBuffer& frame : burst) {
            if (auto dest = route_adaptation_egress(raw->routes, frame)) {
              groups.add(*dest, std::move(frame));
            }
          }
          for (auto& [destination, group] : groups) {
            destination.first->receive_burst(destination.second,
                                             std::move(group));
          }
        });
  }

  Status start_status = shared->plugin->on_start(shared->instance->function());
  if (!start_status.is_ok()) {
    env_.ram->release(base_ram);
    (void)env_.netns->destroy(ns_name);
    return start_status;
  }
  NNFV_RETURN_IF_ERROR(shared->instance->start());

  running_[functional_type].push_back(shared);
  env_.catalog->status(functional_type).running_instances += 1;
  NNFV_LOG(kInfo, "compute") << "native: started NNF '" << functional_type
                             << "' in namespace " << ns_name;
  return shared;
}

Result<DeployedNf> NativeDriver::deploy(const NfDeploySpec& spec,
                                        nfswitch::Lsi& lsi) {
  const std::string key = deployment_key(spec.graph_id, spec.nf_id);
  if (deployments_.contains(key)) {
    return util::already_exists("native deployment " + key);
  }
  auto plugin = env_.catalog->plugin(spec.functional_type);
  if (!plugin) {
    return util::unavailable("no NNF plugin for '" + spec.functional_type +
                             "'");
  }
  const nnf::NnfDescriptor& desc = plugin.value()->descriptor();

  // Select or create the instance: prefer sharing a running instance (no
  // extra process), else spin up a new one within the instance limit.
  std::shared_ptr<Shared> shared;
  bool reused = false;
  auto running = running_.find(spec.functional_type);
  if (desc.sharable && running != running_.end() &&
      !running->second.empty()) {
    shared = running->second.front();
    reused = true;
  } else if (env_.catalog->can_instantiate(spec.functional_type)) {
    auto created = create_instance(spec.functional_type, plugin.value());
    if (!created) return created.status();
    shared = created.value();
  } else {
    return util::unavailable(
        "NNF '" + spec.functional_type +
        "' is at its instance limit and is not sharable");
  }

  Deployment dep;
  dep.shared = shared;
  dep.lsi = &lsi;
  dep.functional_type = spec.functional_type;
  dep.ctx = shared->next_ctx++;

  // Contexts beyond the first are new internal paths.
  std::uint64_t reported_ram = shared->base_ram;
  if (dep.ctx != nnf::kDefaultContext) {
    Status ctx_status = shared->instance->function().add_context(dep.ctx);
    if (!ctx_status.is_ok()) {
      shared->next_ctx--;
      return ctx_status;
    }
    dep.owned_ram = desc.memory.per_context_bytes;
    reported_ram = dep.owned_ram;
    if (!env_.ram->reserve(dep.owned_ram)) {
      (void)shared->instance->function().remove_context(dep.ctx);
      shared->next_ctx--;
      return util::resource_exhausted("RAM for NNF context");
    }
  }

  // "configures the NNF with a predefined configuration script".
  if (!spec.config.empty()) {
    Status config_status = shared->plugin->update(
        shared->instance->function(), dep.ctx, spec.config);
    if (!config_status.is_ok()) {
      if (dep.ctx != nnf::kDefaultContext) {
        (void)shared->instance->function().remove_context(dep.ctx);
        env_.ram->release(dep.owned_ram);
        shared->next_ctx--;
      }
      return config_status;
    }
  }

  // Wire the datapath.
  DeployedNf deployed;
  deployed.graph_id = spec.graph_id;
  deployed.nf_id = spec.nf_id;
  deployed.functional_type = spec.functional_type;
  deployed.backend = virt::BackendKind::kNative;
  deployed.instance = shared->instance->id();
  deployed.context = dep.ctx;
  deployed.ram_bytes = reported_ram;
  deployed.image_bytes = desc.package_bytes;
  deployed.boot_time = reused
                           ? virt::backend_cost(virt::BackendKind::kNative)
                                 .config_ns
                           : virt::backend_cost(virt::BackendKind::kNative)
                                 .boot_ns;
  deployed.reused_shared_instance = reused;

  const std::uint32_t ports =
      spec.num_ports == 0 ? static_cast<std::uint32_t>(desc.num_ports)
                          : spec.num_ports;
  auto rollback = [&]() {
    for (nfswitch::PortId created : dep.lsi_ports) {
      (void)lsi.remove_port(created);
    }
    for (const std::string& owner : dep.mark_owners) {
      (void)env_.marks->release(owner);
    }
    if (shared->adaptation != nullptr) {
      shared->adaptation->unbind_context(dep.ctx);
      for (nnf::Mark mark : dep.marks) shared->routes.erase(mark);
    }
    if (dep.ctx != nnf::kDefaultContext) {
      (void)shared->instance->function().remove_context(dep.ctx);
      env_.ram->release(dep.owned_ram);
      shared->next_ctx--;
    }
  };

  for (std::uint32_t p = 0; p < ports; ++p) {
    auto port = lsi.add_port(spec.nf_id + ":" + std::to_string(p));
    if (!port) {
      rollback();
      return port.status();
    }
    dep.lsi_ports.push_back(port.value());
    deployed.ports.push_back(PortAttachment{port.value(), std::nullopt});

    if (desc.single_interface) {
      // Shared single-interface path: allocate the per-(graph, port) mark,
      // bind it in the adaptation layer, and route egress back here.
      const std::string owner =
          "g:" + spec.graph_id + ":" + spec.nf_id + ":" + std::to_string(p);
      auto mark = env_.marks->allocate(owner);
      if (!mark) {
        rollback();
        return mark.status();
      }
      dep.mark_owners.push_back(owner);
      dep.marks.push_back(mark.value());
      deployed.ports.back().mark = mark.value();
      Status bind = shared->adaptation->bind(dep.ctx, p, mark.value());
      if (!bind.is_ok()) {
        rollback();
        return bind;
      }
      shared->routes[mark.value()] = {&lsi, port.value()};

      // Switch -> NNF: tag with the mark, pay the service time, then let
      // the adaptation layer demultiplex.
      auto instance = shared->instance;
      Shared* raw = shared.get();
      sim::Simulator* simulator = env_.simulator;
      const nnf::Mark mark_value = mark.value();
      (void)lsi.set_port_peer(
          port.value(),
          [instance, raw, simulator, mark_value](
              packet::PacketBuffer&& frame) {
            packet::set_vlan(frame, mark_value);
            const std::size_t bytes = frame.size();
            auto held =
                std::make_shared<packet::PacketBuffer>(std::move(frame));
            instance->inject_custom(bytes, [raw, simulator, held]() {
              raw->adaptation->receive(simulator->now(), std::move(*held));
            });
          });
      // Burst variant: tag every frame with this port's mark, pay one
      // service-station event for the whole vector, then let the
      // adaptation layer demultiplex the burst in one pass.
      (void)lsi.set_port_burst_peer(
          port.value(),
          [instance, raw, simulator, mark_value](
              packet::PacketBurst&& burst) {
            for (packet::PacketBuffer& frame : burst) {
              packet::set_vlan(frame, mark_value);
            }
            instance->inject_custom_burst(
                std::move(burst),
                [raw, simulator](packet::PacketBurst&& delayed) {
                  raw->adaptation->receive_burst(simulator->now(),
                                                 std::move(delayed));
                });
          });
    } else {
      // Dedicated attachment per port, like any VNF. The burst peer keeps
      // a classified burst together: one service-station event for the
      // whole vector.
      auto instance = shared->instance;
      const nnf::ContextId ctx = dep.ctx;
      (void)lsi.set_port_peer(
          port.value(), [instance, ctx, p](packet::PacketBuffer&& frame) {
            instance->inject(ctx, p, std::move(frame));
          });
      (void)lsi.set_port_burst_peer(
          port.value(), [instance, ctx, p](packet::PacketBurst&& burst) {
            instance->inject_burst(ctx, p, std::move(burst));
          });
    }
  }

  if (!desc.single_interface) {
    std::vector<nfswitch::PortId> port_map = dep.lsi_ports;
    nfswitch::Lsi* lsi_ptr = &lsi;
    shared->instance->set_egress(
        dep.ctx, [lsi_ptr, port_map](nnf::NfPortIndex out_port,
                                     packet::PacketBuffer&& frame) {
          if (out_port < port_map.size()) {
            lsi_ptr->receive(port_map[out_port], std::move(frame));
          }
        });
    shared->instance->set_burst_egress(
        dep.ctx, [lsi_ptr, port_map](nnf::NfPortIndex out_port,
                                     packet::PacketBurst&& burst) {
          if (out_port < port_map.size()) {
            lsi_ptr->receive_burst(port_map[out_port], std::move(burst));
          }
        });
  }

  shared->active_contexts += 1;
  env_.catalog->status(spec.functional_type).graphs.insert(spec.graph_id);
  deployments_[key] = std::move(dep);
  NNFV_LOG(kInfo, "compute")
      << "native: graph " << spec.graph_id << " uses NNF '"
      << spec.functional_type << "' context " << deployed.context
      << (reused ? " (shared instance)" : " (new instance)");
  return deployed;
}

Status NativeDriver::update(const DeployedNf& deployed,
                            const nnf::NfConfig& config) {
  auto it = deployments_.find(
      deployment_key(deployed.graph_id, deployed.nf_id));
  if (it == deployments_.end()) {
    return util::not_found("native deployment " + deployed.graph_id + "/" +
                           deployed.nf_id);
  }
  Deployment& dep = it->second;
  return dep.shared->plugin->update(dep.shared->instance->function(),
                                    dep.ctx, config);
}

util::Result<json::Value> NativeDriver::nf_stats(
    const DeployedNf& deployed) const {
  auto it = deployments_.find(
      deployment_key(deployed.graph_id, deployed.nf_id));
  if (it == deployments_.end()) {
    return util::not_found("native deployment " + deployed.graph_id + "/" +
                           deployed.nf_id);
  }
  const Deployment& dep = it->second;
  return dep.shared->instance->function().describe_stats(dep.ctx);
}

Status NativeDriver::undeploy(const DeployedNf& deployed) {
  const std::string key =
      deployment_key(deployed.graph_id, deployed.nf_id);
  auto it = deployments_.find(key);
  if (it == deployments_.end()) {
    return util::not_found("native deployment " + key);
  }
  Deployment& dep = it->second;
  std::shared_ptr<Shared> shared = dep.shared;

  for (nfswitch::PortId port : dep.lsi_ports) {
    (void)dep.lsi->remove_port(port);
  }
  if (shared->adaptation != nullptr) {
    shared->adaptation->unbind_context(dep.ctx);
    for (nnf::Mark mark : dep.marks) shared->routes.erase(mark);
  }
  for (const std::string& owner : dep.mark_owners) {
    (void)env_.marks->release(owner);
  }
  shared->instance->clear_egress(dep.ctx);
  if (dep.ctx != nnf::kDefaultContext) {
    (void)shared->instance->function().remove_context(dep.ctx);
  }
  env_.ram->release(dep.owned_ram);
  shared->active_contexts -= 1;

  // Was this the graph's last use of the type? Update catalog status.
  const std::string graph_id = deployed.graph_id;
  const std::string type = dep.functional_type;
  deployments_.erase(it);
  bool graph_still_uses_type = false;
  for (const auto& [other_key, other] : deployments_) {
    if (other.functional_type == type &&
        other_key.substr(0, other_key.find('/')) == graph_id) {
      graph_still_uses_type = true;
      break;
    }
  }
  if (!graph_still_uses_type) {
    env_.catalog->status(type).graphs.erase(graph_id);
  }

  if (shared->active_contexts == 0) {
    destroy_instance(type, shared);
  }
  return Status::ok();
}

void NativeDriver::destroy_instance(const std::string& functional_type,
                                    const std::shared_ptr<Shared>& shared) {
  (void)shared->plugin->on_stop(shared->instance->function());
  (void)shared->instance->destroy();
  (void)env_.netns->destroy(shared->ns_name);
  env_.ram->release(shared->base_ram);
  auto& list = running_[functional_type];
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (*it == shared) {
      list.erase(it);
      break;
    }
  }
  auto& status = env_.catalog->status(functional_type);
  if (status.running_instances > 0) status.running_instances -= 1;
  NNFV_LOG(kInfo, "compute") << "native: stopped NNF '" << functional_type
                             << "' (namespace " << shared->ns_name << ")";
}

std::size_t NativeDriver::running_instances(
    const std::string& functional_type) const {
  auto it = running_.find(functional_type);
  return it == running_.end() ? 0 : it->second.size();
}

std::size_t NativeDriver::total_instances() const {
  std::size_t total = 0;
  for (const auto& [type, list] : running_) total += list.size();
  return total;
}

}  // namespace nnfv::compute
