// Simulated Linux network namespaces.
//
// The NNF driver starts every native function in a fresh namespace "to
// provide a basic form of isolation" (paper §2). We reproduce the
// *semantics* the driver relies on: namespace name uniqueness, interface
// ownership (an interface lives in exactly one namespace), veth pairs whose
// ends are deleted together, and teardown that returns an inventory.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace nnfv::netns {

using NamespaceId = std::uint32_t;

/// The root (default) namespace always exists with id 0.
inline constexpr NamespaceId kRootNamespace = 0;

struct InterfaceInfo {
  std::string name;
  NamespaceId ns = kRootNamespace;
  /// Set when the interface is one end of a veth pair.
  std::optional<std::string> veth_peer;
  bool up = false;
};

class NamespaceRegistry {
 public:
  NamespaceRegistry();

  /// Creates a named namespace (like `ip netns add`).
  util::Result<NamespaceId> create(const std::string& name);

  /// Destroys a namespace. Its interfaces are destroyed with it (kernel
  /// semantics); veth peers in other namespaces are destroyed too.
  /// Returns the names of all interfaces that disappeared.
  util::Result<std::vector<std::string>> destroy(const std::string& name);

  [[nodiscard]] bool exists(const std::string& name) const;
  [[nodiscard]] util::Result<NamespaceId> id_of(const std::string& name) const;
  [[nodiscard]] std::size_t count() const { return namespaces_.size(); }

  /// Creates a plain interface inside `ns`.
  util::Status create_interface(NamespaceId ns, const std::string& ifname);

  /// Creates a veth pair with one end in each namespace
  /// (`ip link add A type veth peer name B`, then moves).
  util::Status create_veth(NamespaceId ns_a, const std::string& if_a,
                           NamespaceId ns_b, const std::string& if_b);

  /// Moves an interface to another namespace (`ip link set X netns Y`).
  /// Interface names must stay unique within the destination namespace.
  util::Status move_interface(const std::string& ifname, NamespaceId from,
                              NamespaceId to);

  util::Status set_interface_up(NamespaceId ns, const std::string& ifname,
                                bool up);

  /// Deletes one interface; a veth peer is deleted with it.
  util::Status delete_interface(NamespaceId ns, const std::string& ifname);

  [[nodiscard]] std::optional<InterfaceInfo> interface(
      NamespaceId ns, const std::string& ifname) const;

  [[nodiscard]] std::vector<std::string> interfaces_in(NamespaceId ns) const;

 private:
  struct Namespace {
    std::string name;
    std::set<std::string> interfaces;
  };

  // Interface key: (namespace, name) — names are only unique per namespace.
  using IfKey = std::pair<NamespaceId, std::string>;

  util::Status insert_interface(NamespaceId ns, const std::string& ifname,
                                std::optional<IfKey> veth_peer);

  std::map<NamespaceId, Namespace> namespaces_;
  std::map<std::string, NamespaceId> by_name_;
  std::map<IfKey, InterfaceInfo> interfaces_;
  std::map<IfKey, IfKey> veth_peers_;
  NamespaceId next_id_ = 1;
};

}  // namespace nnfv::netns
