#include "netns/netns.hpp"

namespace nnfv::netns {

using util::Result;
using util::Status;

NamespaceRegistry::NamespaceRegistry() {
  namespaces_[kRootNamespace] = Namespace{"", {}};
}

Result<NamespaceId> NamespaceRegistry::create(const std::string& name) {
  if (name.empty()) return util::invalid_argument("namespace name empty");
  if (by_name_.contains(name)) {
    return util::already_exists("namespace '" + name + "'");
  }
  const NamespaceId id = next_id_++;
  namespaces_[id] = Namespace{name, {}};
  by_name_[name] = id;
  return id;
}

Result<std::vector<std::string>> NamespaceRegistry::destroy(
    const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return util::not_found("namespace '" + name + "'");
  }
  const NamespaceId id = it->second;
  std::vector<std::string> removed;
  // Copy: delete_interface mutates the set.
  const std::set<std::string> ifnames = namespaces_[id].interfaces;
  for (const std::string& ifname : ifnames) {
    // A veth peer in another namespace disappears too; record both.
    auto peer = veth_peers_.find({id, ifname});
    if (peer != veth_peers_.end()) {
      removed.push_back(peer->second.second);
    }
    removed.push_back(ifname);
    (void)delete_interface(id, ifname);
  }
  namespaces_.erase(id);
  by_name_.erase(it);
  return removed;
}

bool NamespaceRegistry::exists(const std::string& name) const {
  return by_name_.contains(name);
}

Result<NamespaceId> NamespaceRegistry::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return util::not_found("namespace '" + name + "'");
  }
  return it->second;
}

Status NamespaceRegistry::insert_interface(NamespaceId ns,
                                           const std::string& ifname,
                                           std::optional<IfKey> veth_peer) {
  auto nsit = namespaces_.find(ns);
  if (nsit == namespaces_.end()) {
    return util::not_found("namespace id " + std::to_string(ns));
  }
  if (nsit->second.interfaces.contains(ifname)) {
    return util::already_exists("interface '" + ifname + "' in namespace " +
                                std::to_string(ns));
  }
  nsit->second.interfaces.insert(ifname);
  InterfaceInfo info;
  info.name = ifname;
  info.ns = ns;
  if (veth_peer.has_value()) info.veth_peer = veth_peer->second;
  interfaces_[{ns, ifname}] = info;
  if (veth_peer.has_value()) veth_peers_[{ns, ifname}] = *veth_peer;
  return Status::ok();
}

Status NamespaceRegistry::create_interface(NamespaceId ns,
                                           const std::string& ifname) {
  if (ifname.empty()) return util::invalid_argument("interface name empty");
  return insert_interface(ns, ifname, std::nullopt);
}

Status NamespaceRegistry::create_veth(NamespaceId ns_a, const std::string& if_a,
                                      NamespaceId ns_b,
                                      const std::string& if_b) {
  if (if_a.empty() || if_b.empty()) {
    return util::invalid_argument("veth interface name empty");
  }
  if (ns_a == ns_b && if_a == if_b) {
    return util::invalid_argument("veth ends must differ");
  }
  NNFV_RETURN_IF_ERROR(insert_interface(ns_a, if_a, IfKey{ns_b, if_b}));
  Status status = insert_interface(ns_b, if_b, IfKey{ns_a, if_a});
  if (!status.is_ok()) {
    // Roll back the first end.
    namespaces_[ns_a].interfaces.erase(if_a);
    interfaces_.erase({ns_a, if_a});
    veth_peers_.erase({ns_a, if_a});
    return status;
  }
  return Status::ok();
}

Status NamespaceRegistry::move_interface(const std::string& ifname,
                                         NamespaceId from, NamespaceId to) {
  auto it = interfaces_.find({from, ifname});
  if (it == interfaces_.end()) {
    return util::not_found("interface '" + ifname + "' in namespace " +
                           std::to_string(from));
  }
  auto toit = namespaces_.find(to);
  if (toit == namespaces_.end()) {
    return util::not_found("namespace id " + std::to_string(to));
  }
  if (toit->second.interfaces.contains(ifname)) {
    return util::already_exists("interface '" + ifname +
                                "' in destination namespace");
  }
  InterfaceInfo info = it->second;
  info.ns = to;

  // Re-key veth bookkeeping.
  auto peer = veth_peers_.find({from, ifname});
  if (peer != veth_peers_.end()) {
    const IfKey peer_key = peer->second;
    veth_peers_.erase(peer);
    veth_peers_[{to, ifname}] = peer_key;
    veth_peers_[peer_key] = {to, ifname};
  }

  interfaces_.erase(it);
  namespaces_[from].interfaces.erase(ifname);
  toit->second.interfaces.insert(ifname);
  interfaces_[{to, ifname}] = info;
  return Status::ok();
}

Status NamespaceRegistry::set_interface_up(NamespaceId ns,
                                           const std::string& ifname,
                                           bool up) {
  auto it = interfaces_.find({ns, ifname});
  if (it == interfaces_.end()) {
    return util::not_found("interface '" + ifname + "' in namespace " +
                           std::to_string(ns));
  }
  it->second.up = up;
  return Status::ok();
}

Status NamespaceRegistry::delete_interface(NamespaceId ns,
                                           const std::string& ifname) {
  auto it = interfaces_.find({ns, ifname});
  if (it == interfaces_.end()) {
    return util::not_found("interface '" + ifname + "' in namespace " +
                           std::to_string(ns));
  }
  // Delete a veth peer with us (kernel semantics).
  auto peer = veth_peers_.find({ns, ifname});
  if (peer != veth_peers_.end()) {
    const IfKey peer_key = peer->second;
    veth_peers_.erase(peer);
    veth_peers_.erase(peer_key);
    auto peer_ns = namespaces_.find(peer_key.first);
    if (peer_ns != namespaces_.end()) {
      peer_ns->second.interfaces.erase(peer_key.second);
    }
    interfaces_.erase(peer_key);
  }
  namespaces_[ns].interfaces.erase(ifname);
  interfaces_.erase(it);
  return Status::ok();
}

std::optional<InterfaceInfo> NamespaceRegistry::interface(
    NamespaceId ns, const std::string& ifname) const {
  auto it = interfaces_.find({ns, ifname});
  if (it == interfaces_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> NamespaceRegistry::interfaces_in(
    NamespaceId ns) const {
  std::vector<std::string> out;
  auto it = namespaces_.find(ns);
  if (it == namespaces_.end()) return out;
  out.assign(it->second.interfaces.begin(), it->second.interfaces.end());
  return out;
}

}  // namespace nnfv::netns
